"""The runtime execution engine: evaluates a physical plan and reports metrics.

The engine is deliberately small — ESTOCADA pushes as much work as possible to
the underlying stores, and the runtime only evaluates the "last-step"
operations (BindJoin, mediator-side joins, residual filters, projection and
nested construction).  The :class:`QueryResult` carries the answer rows plus a
performance breakdown *split across the underlying DMSs and the runtime*,
which is exactly what the demo's step 3 displays.

With ``parallelism > 1`` the engine runs the plan's :class:`Exchange`
subtrees concurrently on a bounded :class:`~repro.runtime.parallel.ExecutorPool`:
every Exchange is pre-started before the root is drained, so independent
delegated store requests overlap and a multi-store fan-out pays roughly the
*max* of the store latencies instead of their sum.  ``parallelism == 1`` is a
strict serial fallback — Exchanges are pass-throughs and execution is
identical to the pre-parallel engine.  The default width comes from the
``REPRO_PARALLELISM`` environment variable (1 when unset).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.cancellation import Deadline, current_cancel_event, set_current_cancel
from repro.errors import DeadlineExceededError
from repro.runtime.batch import compiled_enabled, default_batch_size, fusion_enabled
from repro.runtime.operators import ExecutionContext, Operator
from repro.runtime.parallel import Exchange, ExecutorPool
from repro.runtime.values import Binding

__all__ = ["StoreBreakdown", "QueryResult", "ExecutionEngine", "default_parallelism"]


def default_parallelism() -> int:
    """The process-wide default executor width (``REPRO_PARALLELISM``, else 1)."""
    raw = os.environ.get("REPRO_PARALLELISM", "").strip()
    try:
        return max(1, int(raw)) if raw else 1
    except ValueError:
        return 1


@dataclass(slots=True)
class StoreBreakdown:
    """Aggregated metrics of the requests sent to one store during a query."""

    store: str
    requests: int = 0
    rows_scanned: int = 0
    rows_returned: int = 0
    index_lookups: int = 0
    partitions_used: int = 0
    partitions_pruned: int = 0
    elapsed_seconds: float = 0.0
    replica_attempts: int = 0
    replica_retries: int = 0
    replica_hedges: int = 0
    replica_failovers: int = 0
    segments_scanned: int = 0
    segments_skipped: int = 0
    rows_decoded: int = 0


@dataclass(slots=True)
class QueryResult:
    """Answer rows plus the per-store / runtime performance breakdown."""

    rows: list[Binding]
    elapsed_seconds: float
    store_breakdown: dict[str, StoreBreakdown] = field(default_factory=dict)
    runtime_rows_processed: int = 0
    plan_description: str = ""
    batches: int = 0
    cache_hit: bool = False
    parallelism: int = 1
    max_concurrent_requests: int = 0
    observed_cardinalities: dict[str, int] = field(default_factory=dict)
    observed_shard_cardinalities: dict[str, dict[int, int]] = field(default_factory=dict)
    shards_contacted: int = 0
    shards_pruned: int = 0
    exchange_rows: int = 0
    batch_size: int = 0
    compiled: bool = True
    fused: bool = True
    operator_stats: dict[str, dict[str, float]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def stores_time(self) -> float:
        """Total time spent inside the underlying stores."""
        return sum(b.elapsed_seconds for b in self.store_breakdown.values())

    def runtime_time(self) -> float:
        """Time spent in the ESTOCADA runtime (total minus store time)."""
        return max(self.elapsed_seconds - self.stores_time(), 0.0)

    def replica_activity(self) -> Mapping[str, int]:
        """Recovery work done by replicated stores during this query.

        ``attempts`` counts every replica request issued (including the
        first, fault-free one per delegated request), ``retries`` the
        same-replica re-issues after transient errors, ``hedges`` the backup
        requests fired against stragglers, and ``failovers`` the moves to
        another replica after a hard failure.  All zero for queries that
        touch no replicated store.
        """
        return {
            "attempts": sum(b.replica_attempts for b in self.store_breakdown.values()),
            "retries": sum(b.replica_retries for b in self.store_breakdown.values()),
            "hedges": sum(b.replica_hedges for b in self.store_breakdown.values()),
            "failovers": sum(b.replica_failovers for b in self.store_breakdown.values()),
        }

    def segment_activity(self) -> Mapping[str, int]:
        """Durable-segment work done during this query.

        ``scanned`` counts the segments whose column blocks were actually
        decoded, ``skipped`` the segments a zone map excluded without reading
        a block, and ``rows_decoded`` the rows materialized from scanned
        segments.  All zero for queries served purely from memory.
        """
        return {
            "scanned": sum(b.segments_scanned for b in self.store_breakdown.values()),
            "skipped": sum(b.segments_skipped for b in self.store_breakdown.values()),
            "rows_decoded": sum(b.rows_decoded for b in self.store_breakdown.values()),
        }

    def summary(self) -> Mapping[str, object]:
        """A JSON-friendly summary (used by the demo-style reporting)."""
        return {
            "rows": len(self.rows),
            "elapsed_seconds": self.elapsed_seconds,
            "runtime_seconds": self.runtime_time(),
            "batches": self.batches,
            "cache_hit": self.cache_hit,
            "parallelism": self.parallelism,
            "max_concurrent_requests": self.max_concurrent_requests,
            "shards": {
                "contacted": self.shards_contacted,
                "pruned": self.shards_pruned,
            },
            "replicas": dict(self.replica_activity()),
            "segments": dict(self.segment_activity()),
            "execution": {
                "batch_size": self.batch_size,
                "compiled": self.compiled,
                "fused": self.fused,
                "runtime_rows_processed": self.runtime_rows_processed,
                "operators": {
                    name: dict(stats) for name, stats in self.operator_stats.items()
                },
            },
            "stores": {
                name: {
                    "requests": breakdown.requests,
                    "rows_scanned": breakdown.rows_scanned,
                    "rows_returned": breakdown.rows_returned,
                    "index_lookups": breakdown.index_lookups,
                    "elapsed_seconds": breakdown.elapsed_seconds,
                }
                for name, breakdown in self.store_breakdown.items()
            },
        }


class ExecutionEngine:
    """Evaluates physical plans batch-at-a-time.

    The plan's batch stream is drained here — the *only* place where the full
    result is materialized — while every operator above the stores streams
    :class:`~repro.runtime.batch.RowBatch` objects.  ``parallelism`` sets the
    default executor width for :meth:`execute` (overridable per call); pools
    are created lazily per width and reused across executions.
    """

    def __init__(
        self, batch_size: int | None = None, parallelism: int | None = None
    ) -> None:
        if batch_size is None:
            batch_size = default_batch_size()
        elif batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._batch_size = batch_size
        self._parallelism = (
            default_parallelism() if parallelism is None else max(1, parallelism)
        )
        self._pools: dict[int, ExecutorPool] = {}
        self._pools_lock = threading.Lock()

    @property
    def parallelism(self) -> int:
        """The engine's default executor width."""
        return self._parallelism

    @property
    def batch_size(self) -> int:
        """The engine's default batch size (``REPRO_BATCH_SIZE`` unless set)."""
        return self._batch_size

    def _pool(self, width: int) -> ExecutorPool:
        # Concurrent queries (the serving layer's workers) share one pool per
        # width instead of creating their own — intra-query Exchange fan-out
        # and cross-query concurrency draw from the same bounded thread set.
        with self._pools_lock:
            pool = self._pools.get(width)
            if pool is None:
                pool = ExecutorPool(width)
                self._pools[width] = pool
            return pool

    def close(self) -> None:
        """Shut down every executor pool this engine created."""
        with self._pools_lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.close()

    @staticmethod
    def _prestart_exchanges(plan: Operator, context: ExecutionContext) -> None:
        """Kick off every Exchange so independent store requests overlap."""
        stack = [plan]
        while stack:
            operator = stack.pop()
            if isinstance(operator, Exchange):
                operator.start(context)
            stack.extend(operator.children())

    def execute(
        self,
        plan: Operator,
        parameters: Mapping[str, object] | None = None,
        batch_size: int | None = None,
        parallelism: int | None = None,
        deadline_seconds: float | None = None,
        scan_hints: tuple[tuple[str, str, object], ...] = (),
    ) -> QueryResult:
        """Run ``plan`` and return its result with the performance breakdown.

        ``deadline_seconds`` bounds the execution's wall clock: when the
        budget elapses a :class:`~repro.cancellation.Deadline` timer fires
        the execution's cancel events — every Exchange worker and the
        consumer thread stop issuing store requests, in-flight simulated
        store waits wake immediately — and the query surfaces a typed
        :class:`~repro.errors.DeadlineExceededError` instead of a partial
        result.
        """
        width = self._parallelism if parallelism is None else max(1, parallelism)
        context = ExecutionContext(
            parameters=dict(parameters or {}),
            batch_size=batch_size or self._batch_size,
            scan_hints=scan_hints,
        )
        deadline: Deadline | None = None
        previous_cancel = None
        if deadline_seconds is not None:
            deadline = Deadline(deadline_seconds)
            context.deadline = deadline
        if width > 1:
            context.pool = self._pool(width)
        started = time.perf_counter()
        rows: list[Binding] = []
        batch_count = 0
        try:
            if deadline is not None:
                # Publish the deadline's cancel event on the consumer thread
                # too: serial store waits and bind-join probes running here
                # wake the moment the timer fires (Exchange workers register
                # their own cancel events as deadline listeners).
                previous_cancel = current_cancel_event()
                set_current_cancel(deadline.event)
                deadline.start()
            try:
                if context.pool is not None:
                    self._prestart_exchanges(plan, context)
                for batch in plan.batches(context):
                    batch_count += 1
                    rows.extend(batch.iter_bindings())
                    if deadline is not None and deadline.expired():
                        raise DeadlineExceededError(
                            f"query exceeded its {deadline.seconds:.3f}s deadline "
                            f"after {batch_count} batches",
                            deadline_seconds=deadline.seconds,
                        )
            except DeadlineExceededError:
                raise
            except BaseException as error:
                if deadline is not None and deadline.expired():
                    # A cancelled store wait often surfaces as a transient
                    # store error; once the budget has elapsed the *cause* is
                    # the deadline, so that is what callers see (typed).
                    raise DeadlineExceededError(
                        f"query exceeded its {deadline.seconds:.3f}s deadline",
                        deadline_seconds=deadline.seconds,
                    ) from error
                raise
            if deadline is not None and deadline.expired():
                raise DeadlineExceededError(
                    f"query exceeded its {deadline.seconds:.3f}s deadline",
                    deadline_seconds=deadline.seconds,
                )
        finally:
            if deadline is not None:
                deadline.cancel()
                set_current_cancel(previous_cancel)
            # Normal completion, LIMIT early-exit and errors all funnel here:
            # cancel every Exchange worker and wait until each has closed its
            # child pipeline (finalizing store streams) and merged metrics.
            context.shutdown_exchanges()
        elapsed = time.perf_counter() - started

        breakdown: dict[str, StoreBreakdown] = {}
        for store_name, metrics in context.store_results:
            entry = breakdown.setdefault(store_name, StoreBreakdown(store=store_name))
            entry.requests += 1
            entry.rows_scanned += metrics.rows_scanned
            entry.rows_returned += metrics.rows_returned
            entry.index_lookups += metrics.index_lookups
            entry.partitions_used += metrics.partitions_used
            entry.partitions_pruned += metrics.partitions_pruned
            entry.elapsed_seconds += metrics.elapsed_seconds
            entry.replica_attempts += metrics.replica_attempts
            entry.replica_retries += metrics.replica_retries
            entry.replica_hedges += metrics.replica_hedges
            entry.replica_failovers += metrics.replica_failovers
            entry.segments_scanned += metrics.segments_scanned
            entry.segments_skipped += metrics.segments_skipped
            entry.rows_decoded += metrics.rows_decoded

        observed: dict[str, int] = {}
        observed_shards: dict[str, dict[int, int]] = {}
        for fragment, shard, observed_rows in context.observations:
            if shard is None:
                observed[fragment] = observed_rows
            else:
                observed_shards.setdefault(fragment, {})[shard] = observed_rows

        shards_contacted = sum(contacted for contacted, _ in context.shard_reports)
        shards_pruned = sum(pruned for _, pruned in context.shard_reports)
        compiled = compiled_enabled()

        # Per-operator batch/row throughput: rows-per-second is computed
        # against the whole execution's wall clock (operators overlap and
        # pipeline, so per-operator timing would double-charge shared time).
        operator_stats = {
            name: {
                "batches": batches,
                "rows": rows,
                "rows_per_second": (rows / elapsed) if elapsed > 0 else 0.0,
            }
            for name, (batches, rows) in sorted(context.operator_tallies.items())
        }

        return QueryResult(
            rows=rows,
            elapsed_seconds=elapsed,
            store_breakdown=breakdown,
            runtime_rows_processed=context.runtime_rows_processed,
            plan_description=plan.explain(),
            batches=batch_count,
            parallelism=width,
            max_concurrent_requests=context.tracker.peak,
            observed_cardinalities=observed,
            observed_shard_cardinalities=observed_shards,
            shards_contacted=shards_contacted,
            shards_pruned=shards_pruned,
            exchange_rows=context.exchange_rows,
            batch_size=context.batch_size,
            compiled=compiled,
            # The interpreted path never fuses: `fused` reports whether fused
            # kernels could actually have run, not the raw env switch.
            fused=compiled and fusion_enabled(),
            operator_stats=operator_stats,
        )
