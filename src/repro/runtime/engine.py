"""The runtime execution engine: evaluates a physical plan and reports metrics.

The engine is deliberately small — ESTOCADA pushes as much work as possible to
the underlying stores, and the runtime only evaluates the "last-step"
operations (BindJoin, mediator-side joins, residual filters, projection and
nested construction).  The :class:`QueryResult` carries the answer rows plus a
performance breakdown *split across the underlying DMSs and the runtime*,
which is exactly what the demo's step 3 displays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.runtime.batch import DEFAULT_BATCH_SIZE
from repro.runtime.operators import ExecutionContext, Operator
from repro.runtime.values import Binding
from repro.stores.base import StoreMetrics

__all__ = ["StoreBreakdown", "QueryResult", "ExecutionEngine"]


@dataclass(slots=True)
class StoreBreakdown:
    """Aggregated metrics of the requests sent to one store during a query."""

    store: str
    requests: int = 0
    rows_scanned: int = 0
    rows_returned: int = 0
    index_lookups: int = 0
    elapsed_seconds: float = 0.0


@dataclass(slots=True)
class QueryResult:
    """Answer rows plus the per-store / runtime performance breakdown."""

    rows: list[Binding]
    elapsed_seconds: float
    store_breakdown: dict[str, StoreBreakdown] = field(default_factory=dict)
    runtime_rows_processed: int = 0
    plan_description: str = ""
    batches: int = 0
    cache_hit: bool = False

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def stores_time(self) -> float:
        """Total time spent inside the underlying stores."""
        return sum(b.elapsed_seconds for b in self.store_breakdown.values())

    def runtime_time(self) -> float:
        """Time spent in the ESTOCADA runtime (total minus store time)."""
        return max(self.elapsed_seconds - self.stores_time(), 0.0)

    def summary(self) -> Mapping[str, object]:
        """A JSON-friendly summary (used by the demo-style reporting)."""
        return {
            "rows": len(self.rows),
            "elapsed_seconds": self.elapsed_seconds,
            "runtime_seconds": self.runtime_time(),
            "batches": self.batches,
            "cache_hit": self.cache_hit,
            "stores": {
                name: {
                    "requests": breakdown.requests,
                    "rows_scanned": breakdown.rows_scanned,
                    "rows_returned": breakdown.rows_returned,
                    "index_lookups": breakdown.index_lookups,
                    "elapsed_seconds": breakdown.elapsed_seconds,
                }
                for name, breakdown in self.store_breakdown.items()
            },
        }


class ExecutionEngine:
    """Evaluates physical plans batch-at-a-time.

    The plan's batch stream is drained here — the *only* place where the full
    result is materialized — while every operator above the stores streams
    :class:`~repro.runtime.batch.RowBatch` objects.
    """

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        self._batch_size = max(1, batch_size)

    def execute(
        self,
        plan: Operator,
        parameters: Mapping[str, object] | None = None,
        batch_size: int | None = None,
    ) -> QueryResult:
        """Run ``plan`` and return its result with the performance breakdown."""
        context = ExecutionContext(
            parameters=dict(parameters or {}),
            batch_size=batch_size or self._batch_size,
        )
        started = time.perf_counter()
        rows: list[Binding] = []
        batch_count = 0
        for batch in plan.batches(context):
            batch_count += 1
            rows.extend(batch.iter_bindings())
        elapsed = time.perf_counter() - started

        breakdown: dict[str, StoreBreakdown] = {}
        for store_name, metrics in context.store_results:
            entry = breakdown.setdefault(store_name, StoreBreakdown(store=store_name))
            entry.requests += 1
            entry.rows_scanned += metrics.rows_scanned
            entry.rows_returned += metrics.rows_returned
            entry.index_lookups += metrics.index_lookups
            entry.elapsed_seconds += metrics.elapsed_seconds

        return QueryResult(
            rows=rows,
            elapsed_seconds=elapsed,
            store_breakdown=breakdown,
            runtime_rows_processed=context.runtime_rows_processed,
            plan_description=plan.explain(),
            batches=batch_count,
        )
