"""Per-plan compiled kernels: batch-at-a-time closures over tuple rows.

The interpreted runtime evaluates residual predicates, projections and output
shaping row by row, rebuilding a binding dict per row just to call a
``dict``-based predicate.  This module compiles those per-row interpretations
into **kernels**: closures specialized against a batch schema exactly once,
operating on plain row tuples by column *position*.

Three pieces:

* **kernel builders** (:func:`predicate_kernel`, :func:`projection_kernel`,
  :func:`key_kernel`) — turn a declarative spec plus a schema into a closure
  over whole row lists (`itemgetter`-backed where every column resolves);
  :func:`key_kernel` is the vectorized hash-join build/probe primitive — it
  extracts the key column(s) of an entire batch in one pass and represents
  single-column keys as bare scalars (no per-row tuple allocation);
* **stages** (:class:`FilterStage`, :class:`ProjectStage`,
  :class:`OutputStage`) — the declarative, fusable forms of the runtime's
  Filter / Project / output-shaping operators.  Being data (not opaque
  callables), stages can be concatenated by the physical-lowering fusion
  pass;
* :class:`FusedPipeline` — a single operator evaluating a chain of stages
  (plus an optional LIMIT) in one pass per batch: rows are filtered,
  projected and reshaped without ever materializing the intermediate
  batches the unfused operator chain would produce.

``REPRO_COMPILED=0`` disables the whole compiled path (stores fall back to
dict streams, residual work to the interpreted operators); ``REPRO_FUSED=0``
keeps the compiled kernels but disables chain fusion — the benchmark uses
the two switches to separate the wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter
from typing import Callable, Iterator, Sequence

from repro.runtime.batch import RowBatch, compiled_enabled, fusion_enabled
from repro.runtime.operators import ExecutionContext, Operator
from repro.stores.base import COMPARATORS

__all__ = [
    "compiled_enabled",
    "fusion_enabled",
    "PredicateSpec",
    "ZoneBound",
    "extract_zone_bounds",
    "predicate_kernel",
    "projection_kernel",
    "key_kernel",
    "FilterStage",
    "ProjectStage",
    "OutputStage",
    "FusedPipeline",
    "attach_stage",
]


# -- kernel builders -----------------------------------------------------------------

RowsKernel = Callable[[list], list]


@dataclass(frozen=True, slots=True)
class PredicateSpec:
    """One residual comparison, compilable against any batch schema.

    ``value`` is a literal, or — with ``value_is_column`` — the name of the
    other column.  Semantics mirror the interpreted residual filters: a
    ``None`` operand (or a column absent from the schema) fails the
    comparison.
    """

    column: str
    op: str
    value: object
    value_is_column: bool = False

    def describe(self) -> str:
        """Compact rendering for plan text."""
        target = self.value if self.value_is_column else repr(self.value)
        return f"{self.column} {self.op} {target}"


@dataclass(frozen=True, slots=True)
class ZoneBound:
    """One literal comparison usable for zone-map segment pruning.

    The durable segment engine compares these against a segment's per-column
    min/max to decide whether the segment can possibly contain a matching
    row.  Only comparisons against a non-None **literal** qualify:
    column-to-column comparisons and ``None`` literals carry no prunable
    bound (``= None`` matches nulls, which zone min/max does not describe).
    """

    column: str
    op: str
    value: object


def extract_zone_bounds(predicates: Sequence) -> tuple[ZoneBound, ...]:
    """The prunable bounds of a predicate conjunction.

    Accepts both runtime :class:`PredicateSpec` objects and store-layer
    ``Predicate`` objects (anything with ``column``/``op``/``value``; a
    truthy ``value_is_column`` disqualifies the comparison).  The result is
    what :meth:`repro.stores.segment.segments.SegmentReader.excluded_by`
    consumes, and what the cost model feeds into
    ``Store.segment_scan_fraction`` when pricing delegated scans.
    """
    bounds: list[ZoneBound] = []
    for predicate in predicates:
        if getattr(predicate, "value_is_column", False):
            continue
        op = predicate.op
        if op not in COMPARATORS:
            continue
        value = predicate.value
        if value is None:
            continue
        bounds.append(ZoneBound(predicate.column, op, value))
    return tuple(bounds)


def predicate_kernel(specs: Sequence[PredicateSpec], schema: Sequence[str]) -> RowsKernel:
    """Compile a conjunction of comparisons into one batch-level filter.

    Column positions are resolved against ``schema`` here, once; the
    returned closure filters a whole row list with direct tuple indexing.
    """
    schema = tuple(schema)
    checks: list[tuple[int | None, Callable, object, bool]] = []
    for spec in specs:
        comparator = COMPARATORS[spec.op]
        left = schema.index(spec.column) if spec.column in schema else None
        if spec.value_is_column:
            right = schema.index(spec.value) if spec.value in schema else None
            checks.append((left, comparator, right, True))
        else:
            checks.append((left, comparator, spec.value, False))

    if any(
        left is None or (is_column and right is None)
        for left, _, right, is_column in checks
    ):
        # A missing operand column means no row can satisfy the conjunction
        # (the interpreted filter drops such rows one by one).
        return lambda rows: []

    if len(checks) == 1:
        left, comparator, right, is_column = checks[0]
        if is_column:
            return lambda rows: [
                row
                for row in rows
                if row[left] is not None
                and row[right] is not None
                and comparator(row[left], row[right])
            ]
        return lambda rows: [
            row for row in rows if row[left] is not None and comparator(row[left], right)
        ]

    def keep(row: tuple) -> bool:
        for left, comparator, right, is_column in checks:
            left_value = row[left]
            if left_value is None:
                return False
            if is_column:
                right_value = row[right]
                if right_value is None or not comparator(left_value, right_value):
                    return False
            elif not comparator(left_value, right):
                return False
        return True

    return lambda rows: [row for row in rows if keep(row)]


def projection_kernel(
    schema: Sequence[str], wanted: Sequence[str]
) -> Callable[[tuple], tuple]:
    """A row-tuple transform selecting ``wanted`` columns (None when absent)."""
    schema = tuple(schema)
    indices = [schema.index(column) if column in schema else None for column in wanted]
    if all(index is not None for index in indices):
        if len(indices) == 1:
            only = indices[0]
            return lambda row: (row[only],)
        return itemgetter(*indices)
    return lambda row: tuple(row[i] if i is not None else None for i in indices)


def key_kernel(schema: Sequence[str], columns: Sequence[str]) -> Callable[[list], list]:
    """Vectorized join-key extraction: the keys of a whole batch in one pass.

    Single-column keys are bare values (no tuple allocation per row); both
    sides of a join must therefore use this kernel so representations agree.
    Columns absent from the schema contribute ``None``, matching the
    row-at-a-time indexer semantics.
    """
    schema = tuple(schema)
    indices = [schema.index(column) if column in schema else None for column in columns]
    if not indices:
        # No key columns (cartesian join): every row shares the empty key.
        return lambda rows: [()] * len(rows)
    if len(indices) == 1:
        only = indices[0]
        if only is None:
            return lambda rows: [None] * len(rows)
        return lambda rows: [row[only] for row in rows]
    if all(index is not None for index in indices):
        getter = itemgetter(*indices)
        return lambda rows: [getter(row) for row in rows]
    return lambda rows: [
        tuple(row[i] if i is not None else None for i in indices) for row in rows
    ]


# -- fusable stages ------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FilterStage:
    """A conjunction of residual comparisons (the compiled Filter)."""

    specs: tuple[PredicateSpec, ...]

    def compile(self, schema: tuple[str, ...]) -> tuple[tuple[str, ...], RowsKernel]:
        """(output schema, rows transform) against ``schema``."""
        return schema, predicate_kernel(self.specs, schema)

    def describe(self) -> str:
        return "filter(" + " AND ".join(spec.describe() for spec in self.specs) + ")"


@dataclass(frozen=True, slots=True)
class ProjectStage:
    """Keep only ``variables``, optionally renaming (the compiled Project)."""

    variables: tuple[str, ...]
    renaming: tuple[tuple[str, str], ...] = ()

    def compile(self, schema: tuple[str, ...]) -> tuple[tuple[str, ...], RowsKernel]:
        renaming = dict(self.renaming)
        output_schema = tuple(renaming.get(v, v) for v in self.variables)
        transform = projection_kernel(schema, self.variables)
        return output_schema, lambda rows: [transform(row) for row in rows]

    def describe(self) -> str:
        return f"project({', '.join(self.variables)})"


@dataclass(frozen=True, slots=True)
class OutputStage:
    """Rename head variables to output column names (the compiled Output).

    ``outputs`` holds one ``(name, is_variable, payload)`` triple per output
    column: the payload is the head variable's name, or the constant value
    for constant head terms.  Columns of the input schema that are neither
    claimed outputs nor head variables (aggregation results, computed
    extras) are appended unchanged — the exact semantics of the interpreted
    ``Output`` operator.
    """

    outputs: tuple[tuple[str, bool, object], ...]

    def compile(self, schema: tuple[str, ...]) -> tuple[tuple[str, ...], RowsKernel]:
        head_variables = {payload for _, is_var, payload in self.outputs if is_var}
        plan: list[tuple[str, bool, object]] = []  # (name, is_constant, value/pos)
        for name, is_var, payload in self.outputs:
            if is_var:
                if payload in schema:
                    plan.append((name, False, schema.index(payload)))
                elif name in schema:
                    plan.append((name, False, schema.index(name)))
                else:
                    plan.append((name, True, None))
            else:
                plan.append((name, True, payload))
        taken = {name for name, _, _ in plan}
        extras = [
            (column, index)
            for index, column in enumerate(schema)
            if column not in taken and column not in head_variables
        ]
        output_schema = tuple(name for name, _, _ in plan) + tuple(c for c, _ in extras)
        if not extras and all(not is_constant for _, is_constant, _ in plan):
            indices = [position for _, _, position in plan]
            if len(indices) == 1:
                only = indices[0]
                return output_schema, lambda rows: [(row[only],) for row in rows]
            getter = itemgetter(*indices)
            return output_schema, lambda rows: [getter(row) for row in rows]
        extra_positions = tuple(index for _, index in extras)
        plan_items = tuple(plan)
        return output_schema, lambda rows: [
            tuple(
                value if is_constant else row[value]
                for _, is_constant, value in plan_items
            )
            + tuple(row[i] for i in extra_positions)
            for row in rows
        ]

    def describe(self) -> str:
        return f"output({', '.join(name for name, _, _ in self.outputs)})"


Stage = FilterStage | ProjectStage | OutputStage


class FusedPipeline(Operator):
    """A Filter→Project→Output(→LIMIT) chain collapsed into one operator.

    Stages run in tuple order (innermost first); each is compiled against
    the incoming batch schema exactly once and re-compiled only on schema
    drift.  A batch makes a single pass through the compiled kernels — no
    intermediate :class:`RowBatch` objects, no per-row dict, no repeated
    column resolution.  The optional ``limit`` truncates the final stream
    and abandons the upstream pipeline early, like the interpreted Output
    operator.
    """

    def __init__(
        self,
        child: Operator,
        stages: Sequence[Stage] = (),
        limit: int | None = None,
    ) -> None:
        self._child = child
        self._stages = tuple(stages)
        self._limit = limit

    @property
    def child(self) -> Operator:
        """The operator feeding the fused chain."""
        return self._child

    @property
    def stages(self) -> tuple[Stage, ...]:
        """The fused stages, in execution order."""
        return self._stages

    @property
    def limit(self) -> int | None:
        """The row limit applied after the last stage (None = unlimited)."""
        return self._limit

    def children(self) -> Sequence[Operator]:
        return (self._child,)

    def _batches(self, context: ExecutionContext) -> Iterator[RowBatch]:
        remaining = self._limit
        source_schema: tuple[str, ...] | None = None
        kernels: list[RowsKernel] = []
        output_schema: tuple[str, ...] = ()
        for batch in self._child.batches(context):
            if batch.columns != source_schema:
                source_schema = batch.columns
                kernels = []
                schema = source_schema
                for stage in self._stages:
                    schema, kernel = stage.compile(schema)
                    kernels.append(kernel)
                output_schema = schema
            rows = batch.rows
            for kernel in kernels:
                if not rows:
                    break
                rows = kernel(rows)
            if not rows:
                continue
            if remaining is not None and len(rows) > remaining:
                rows = rows[:remaining]
            context.runtime_rows_processed += len(rows)
            yield RowBatch(output_schema, rows)
            if remaining is not None:
                remaining -= len(rows)
                if remaining <= 0:
                    return

    def describe(self) -> str:
        parts = [stage.describe() for stage in self._stages]
        if self._limit is not None:
            parts.append(f"limit {self._limit}")
        return f"Fused[{' → '.join(parts) or 'passthrough'}]"


def attach_stage(
    root: Operator, stage: Stage | None, limit: int | None = None
) -> FusedPipeline:
    """Attach one compiled stage (and/or a LIMIT) above ``root``, fusing chains.

    This is the fusion primitive of the physical lowering: with
    ``REPRO_FUSED`` on, a stage attached to a :class:`FusedPipeline` that has
    no terminal LIMIT is *absorbed* into it — consecutive
    Filter → Project → Output (→ LIMIT) steps collapse into one operator.
    With fusion off every stage stays its own single-stage pipeline, so the
    compiled kernels still run but each step materializes its own batch
    stream (the benchmark separates the two wins with exactly this switch).
    """
    stages = () if stage is None else (stage,)
    if (
        fusion_enabled()
        and isinstance(root, FusedPipeline)
        and root.limit is None
    ):
        return FusedPipeline(root.child, root.stages + stages, limit)
    return FusedPipeline(root, stages, limit)
