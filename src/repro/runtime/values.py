"""Values of the lightweight nested-relational runtime.

The ESTOCADA execution engine works on *bindings*: dictionaries mapping
variable names to atomic values (constants, node identifiers) or nested
values (lists of records, documents).  This module provides the small helpers
shared by the operators: merging compatible bindings, grouping, and building
nested results for queries that construct documents or nested tuples.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["Binding", "merge_bindings", "project_binding", "nest_rows", "group_rows"]

Binding = dict[str, object]


def merge_bindings(left: Mapping[str, object], right: Mapping[str, object]) -> Binding | None:
    """Union of two bindings, or None when they disagree on a shared variable."""
    merged: Binding = dict(left)
    for key, value in right.items():
        if key in merged and merged[key] != value:
            return None
        merged[key] = value
    return merged


def project_binding(binding: Mapping[str, object], variables: Sequence[str]) -> Binding:
    """Keep only the chosen variables of a binding (missing ones become None)."""
    return {variable: binding.get(variable) for variable in variables}


def group_rows(
    rows: Iterable[Mapping[str, object]], keys: Sequence[str]
) -> dict[tuple, list[Binding]]:
    """Group rows by the values of ``keys``."""
    groups: dict[tuple, list[Binding]] = {}
    for row in rows:
        group_key = tuple(row.get(key) for key in keys)
        groups.setdefault(group_key, []).append(dict(row))
    return groups


def nest_rows(
    rows: Iterable[Mapping[str, object]],
    group_keys: Sequence[str],
    nested_name: str,
    nested_columns: Sequence[str],
) -> list[Binding]:
    """Build nested records: one row per group, with a list-valued column.

    This is the runtime's "Construct" helper: it produces nested tuples or
    JSON-like results when the query requests them and no underlying store
    supports nested construction natively.
    """
    nested: list[Binding] = []
    for group_key, members in group_rows(rows, group_keys).items():
        record: Binding = dict(zip(group_keys, group_key))
        record[nested_name] = [
            {column: member.get(column) for column in nested_columns} for member in members
        ]
        nested.append(record)
    return nested
