"""A sandboxed catalog view for hypothetical (what-if) planning.

The storage advisor must cost candidate fragments *as if* they were
registered, but registering them in the live
:class:`~repro.catalog.manager.StorageDescriptorManager` — even briefly —
bumps the touched relations' epochs (evicting every cached plan that can see
them) and exposes phantom fragments to concurrent service queries.

:class:`CatalogOverlay` solves this by layering hypothetical additions and
removals over a read-only view of the shared manager.  It implements the
read surface the rewriting engine, the atom resolver and the planner consume
(``fragment`` / ``store`` / ``view_definitions`` /
``access_pattern_registry`` / ``schema_constraints`` / the epoch accessors),
so it can stand in for the manager anywhere hypothetical placements are
costed — the advisor's what-if pipeline and the migration planner both build
one per costing call.  The overlay never mutates the base manager and never
bumps an epoch: hypothetical planning is invisible to every other catalog
consumer by construction.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.catalog.descriptors import StorageDescriptor
from repro.catalog.manager import DatasetInfo, StorageDescriptorManager
from repro.core.binding_patterns import AccessPatternRegistry
from repro.core.constraints import ConstraintSet
from repro.core.views import ViewDefinition
from repro.errors import (
    DuplicateRegistrationError,
    UnknownDatasetError,
    UnknownFragmentError,
    UnknownStoreError,
)
from repro.stores.base import Store

__all__ = ["CatalogOverlay"]


class CatalogOverlay:
    """Hypothetical additions/removals layered over a live descriptor manager.

    Reads resolve overlay-first, then fall through to the base manager;
    writes (:meth:`add_fragment`, :meth:`remove_fragment`) touch only the
    overlay.  The overlay is *not* thread-safe — each costing call builds its
    own — but the base manager it reads from is, so overlay reads are safe
    next to concurrent live-catalog mutations.
    """

    def __init__(self, base: StorageDescriptorManager) -> None:
        self._base = base
        self._added: dict[str, StorageDescriptor] = {}
        self._removed: set[str] = set()

    # -- hypothetical mutations (overlay-only, never touch the base) -----------------
    def add_fragment(self, descriptor: StorageDescriptor) -> None:
        """Add a hypothetical fragment (same validation as a real registration)."""
        name = descriptor.fragment_name
        if name in self._added or (
            name not in self._removed and self._has_base_fragment(name)
        ):
            raise DuplicateRegistrationError(f"fragment {name!r} is already registered")
        if descriptor.dataset not in self._base.datasets():
            raise UnknownDatasetError(
                f"fragment {name!r} references unknown dataset {descriptor.dataset!r}"
            )
        if descriptor.store not in self._base.stores():
            raise UnknownStoreError(
                f"fragment {name!r} references unknown store {descriptor.store!r}"
            )
        self._removed.discard(name)
        self._added[name] = descriptor

    def remove_fragment(self, name: str) -> StorageDescriptor:
        """Hide a fragment from the overlay view (the base keeps it)."""
        if name in self._added:
            return self._added.pop(name)
        descriptor = self._base.fragment(name)  # raises UnknownFragmentError
        self._removed.add(name)
        return descriptor

    def hypothetical_fragments(self) -> tuple[str, ...]:
        """Names of the fragments that exist only in this overlay."""
        return tuple(sorted(self._added))

    def _has_base_fragment(self, name: str) -> bool:
        try:
            self._base.fragment(name)
        except UnknownFragmentError:
            return False
        return True

    # -- epochs (delegated: hypothetical planning must not perturb them) -------------
    @property
    def version(self) -> int:
        """The base manager's version — overlay mutations never bump it."""
        return self._base.version

    @property
    def structural_epoch(self) -> int:
        return self._base.structural_epoch

    def relation_epoch(self, relation: str) -> int:
        return self._base.relation_epoch(relation)

    def epoch_signature(self, relations: Iterable[str]):
        return self._base.epoch_signature(relations)

    def fragment_relations(self, descriptor: StorageDescriptor) -> frozenset[str]:
        return self._base.fragment_relations(descriptor)

    # -- read surface ----------------------------------------------------------------
    def store(self, name: str) -> Store:
        return self._base.store(name)

    def stores(self) -> Mapping[str, Store]:
        return self._base.stores()

    def dataset(self, name: str) -> DatasetInfo:
        return self._base.dataset(name)

    def datasets(self) -> Mapping[str, DatasetInfo]:
        return self._base.datasets()

    def fragment(self, name: str) -> StorageDescriptor:
        descriptor = self._added.get(name)
        if descriptor is not None:
            return descriptor
        if name in self._removed:
            raise UnknownFragmentError(f"fragment {name!r} is not registered")
        return self._base.fragment(name)

    def fragments(
        self, dataset: str | None = None, store: str | None = None
    ) -> list[StorageDescriptor]:
        result = [
            descriptor
            for descriptor in self._base.fragments(dataset=dataset, store=store)
            if descriptor.fragment_name not in self._removed
        ]
        for descriptor in self._added.values():
            if dataset is not None and descriptor.dataset != dataset:
                continue
            if store is not None and descriptor.store != store:
                continue
            result.append(descriptor)
        return result

    def resolved_view(self, descriptor: StorageDescriptor) -> ViewDefinition:
        return self._base.resolved_view(descriptor)

    def view_definitions(self, datasets: Iterable[str] | None = None) -> list[ViewDefinition]:
        wanted = set(datasets) if datasets is not None else None
        views: list[ViewDefinition] = []
        for descriptor in self.fragments():
            if wanted is not None and descriptor.dataset not in wanted:
                continue
            views.append(self.resolved_view(descriptor))
        return views

    def access_pattern_registry(self) -> AccessPatternRegistry:
        registry = AccessPatternRegistry()
        for descriptor in self.fragments():
            pattern = descriptor.access_pattern()
            if pattern is not None:
                registry.register(pattern)
        return registry

    def schema_constraints(self, datasets: Iterable[str] | None = None) -> ConstraintSet:
        return self._base.schema_constraints(datasets)
