"""Per-fragment statistics gathering for the cost model.

ESTOCADA "estimates the cardinality of [a delegated query's] result, based on
statistics it gathers and stores on the data of each fragment and using
database textbook formulas".  :class:`StatisticsCatalog` collects and caches
those statistics from the stores via the common store interface.

The catalog also closes the runtime → planner feedback loop: the execution
engine reports the row count of every fully-drained, unrestricted fragment
scan, and :meth:`StatisticsCatalog.record_observation` folds those observed
cardinalities into an exponentially-weighted moving estimate that
:meth:`StatisticsCatalog.get` returns in place of the stale base cardinality.
The returned *drift* (relative change against the estimate the planner was
using) lets the facade invalidate cached plans whose cost estimates no
longer reflect reality.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.catalog.manager import StorageDescriptorManager
from repro.errors import CatalogError

__all__ = [
    "FragmentStatistics",
    "FragmentStaleness",
    "FragmentUsage",
    "StatisticsCatalog",
    "TenantUsage",
    "OBSERVATION_SMOOTHING",
    "READ_LATENCY_SMOOTHING",
    "ReplicaStatistics",
    "ReplicaHealthBoard",
    "REPLICA_LATENCY_SMOOTHING",
    "REPLICA_UNHEALTHY_AFTER",
]

OBSERVATION_SMOOTHING = 0.4
"""Weight of the newest observation in the exponentially-weighted estimate."""

READ_LATENCY_SMOOTHING = 0.3
"""Weight of the newest sample in a fragment's EWMA read latency."""

REPLICA_LATENCY_SMOOTHING = 0.3
"""Weight of the newest latency sample in a replica's EWMA service latency."""

REPLICA_UNHEALTHY_AFTER = 3
"""Consecutive failures after which a replica is considered unhealthy."""


@dataclass(slots=True)
class ReplicaStatistics:
    """Health and latency tracking of one replica of a replicated store.

    ``ewma_latency_seconds`` is the exponentially-weighted service latency of
    successful requests (None until the first success).  A replica turns
    *unhealthy* after ``unhealthy_after`` consecutive failures and recovers on
    the next success — unhealthy replicas are deprioritized by the router and
    priced out by the cost model, but stay reachable as a last resort.
    """

    replica: str
    unhealthy_after: int = REPLICA_UNHEALTHY_AFTER
    ewma_latency_seconds: float | None = None
    attempts: int = 0
    successes: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    hedges_won: int = 0

    @property
    def healthy(self) -> bool:
        """Whether the replica is currently believed able to serve requests."""
        return self.consecutive_failures < self.unhealthy_after

    def describe(self) -> Mapping[str, object]:
        """JSON-friendly snapshot of this replica's health."""
        return {
            "replica": self.replica,
            "healthy": self.healthy,
            "ewma_latency_seconds": self.ewma_latency_seconds,
            "attempts": self.attempts,
            "successes": self.successes,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "hedges_won": self.hedges_won,
        }


class ReplicaHealthBoard:
    """Per-replica health/latency tracking shared by router, planner and cost model.

    One board belongs to one :class:`~repro.stores.replicated.ReplicatedStore`;
    the store records every attempt's outcome, the router ranks replicas from
    it (cheapest healthy EWMA latency first), the cost model prices replicated
    accesses with :meth:`best_healthy_latency`, and the hedge trigger derives
    its delay from :meth:`latency_percentile`.  All methods are thread-safe —
    hedged attempts record from their own threads.
    """

    def __init__(
        self,
        replicas: Sequence[str],
        unhealthy_after: int = REPLICA_UNHEALTHY_AFTER,
        smoothing: float = REPLICA_LATENCY_SMOOTHING,
    ) -> None:
        self._lock = threading.Lock()
        self._smoothing = min(max(smoothing, 0.0), 1.0)
        self._replicas = [
            ReplicaStatistics(replica=name, unhealthy_after=max(1, unhealthy_after))
            for name in replicas
        ]

    def __len__(self) -> int:
        return len(self._replicas)

    def statistics(self, index: int) -> ReplicaStatistics:
        """The tracked statistics of replica ``index``."""
        return self._replicas[index]

    # -- recording ------------------------------------------------------------------
    def record_success(self, index: int, elapsed_seconds: float) -> None:
        """Fold one successful request into the replica's EWMA latency."""
        with self._lock:
            entry = self._replicas[index]
            entry.attempts += 1
            entry.successes += 1
            entry.consecutive_failures = 0
            sample = max(0.0, float(elapsed_seconds))
            if entry.ewma_latency_seconds is None:
                entry.ewma_latency_seconds = sample
            else:
                entry.ewma_latency_seconds += self._smoothing * (
                    sample - entry.ewma_latency_seconds
                )

    def record_failure(self, index: int) -> None:
        """Record one failed request against the replica."""
        with self._lock:
            entry = self._replicas[index]
            entry.attempts += 1
            entry.failures += 1
            entry.consecutive_failures += 1

    def record_hedge_win(self, index: int) -> None:
        """Record that a backup (hedged) request on this replica won the race."""
        with self._lock:
            self._replicas[index].hedges_won += 1

    # -- selection ------------------------------------------------------------------
    def ranked(self) -> tuple[int, ...]:
        """Replica indices in routing preference order.

        Healthy replicas come first, cheapest EWMA latency first (replicas
        with no latency data yet sort ahead so cold replicas get probed);
        unhealthy replicas follow, least-failed first — they are a last
        resort, never unreachable, so a store where everything looks down can
        still recover.
        """
        with self._lock:
            healthy = [
                (entry.ewma_latency_seconds is not None, entry.ewma_latency_seconds or 0.0, i)
                for i, entry in enumerate(self._replicas)
                if entry.healthy
            ]
            unhealthy = [
                (entry.consecutive_failures, i)
                for i, entry in enumerate(self._replicas)
                if not entry.healthy
            ]
        healthy.sort()
        unhealthy.sort()
        return tuple(i for *_, i in healthy) + tuple(i for _, i in unhealthy)

    def best_healthy_latency(self) -> float | None:
        """The cheapest healthy replica's EWMA latency (None without data)."""
        with self._lock:
            latencies = [
                entry.ewma_latency_seconds
                for entry in self._replicas
                if entry.healthy and entry.ewma_latency_seconds is not None
            ]
        return min(latencies) if latencies else None

    def latency_percentile(self, quantile: float = 0.95) -> float | None:
        """Interpolated percentile over the healthy replicas' EWMA latencies.

        The hedge trigger fires a backup request once the primary has been
        outstanding longer than this (a request slower than the fleet's usual
        service latency is probably a straggler).  None without data.
        """
        with self._lock:
            latencies = sorted(
                entry.ewma_latency_seconds
                for entry in self._replicas
                if entry.healthy and entry.ewma_latency_seconds is not None
            )
        if not latencies:
            return None
        quantile = min(max(quantile, 0.0), 1.0)
        position = quantile * (len(latencies) - 1)
        lower = int(position)
        upper = min(lower + 1, len(latencies) - 1)
        fraction = position - lower
        return latencies[lower] + (latencies[upper] - latencies[lower]) * fraction

    def describe(self) -> list[Mapping[str, object]]:
        """JSON-friendly snapshot of every replica (facade introspection)."""
        with self._lock:
            return [entry.describe() for entry in self._replicas]


@dataclass(frozen=True, slots=True)
class FragmentStatistics:
    """Cardinality and per-column distinct counts of one fragment.

    ``shard_cardinalities`` is non-empty only for fragments materialized in a
    sharded store: one row count per shard, in shard order.  The cost model
    uses it to price a pruned single-shard access against a full fan-out.
    """

    fragment: str
    cardinality: int
    distinct_values: Mapping[str, int]
    indexed_columns: frozenset[str]
    shard_cardinalities: tuple[int, ...] = ()

    def shard_cardinality(self, shard: int) -> int:
        """Row count of one shard (mean share of the total when unknown)."""
        if 0 <= shard < len(self.shard_cardinalities):
            return self.shard_cardinalities[shard]
        if self.shard_cardinalities:
            return max(1, round(self.cardinality / len(self.shard_cardinalities)))
        return self.cardinality

    def distinct(self, column: str) -> int:
        """Distinct count of a column (defaults to the cardinality)."""
        value = dict(self.distinct_values).get(column)
        if value is None or value <= 0:
            return max(self.cardinality, 1)
        return value

    def selectivity_of_equality(self, column: str) -> float:
        """Textbook selectivity of an equality predicate on ``column``."""
        return 1.0 / max(self.distinct(column), 1)


@dataclass(frozen=True, slots=True)
class FragmentStaleness:
    """How far one materialized fragment lags behind its base relations.

    ``pending_deltas`` counts the write-time view deltas queued but not yet
    applied to the fragment; ``pending_rows`` the total signed-row volume of
    those deltas (the work maintenance will do); ``age`` the number of global
    writes that have happened since the fragment's oldest pending delta was
    logged (0 when fresh).  The cost model prices ``pending_rows``, and the
    facade's ``max_staleness`` query knob bounds ``pending_deltas``.
    """

    fragment: str
    pending_deltas: int = 0
    pending_rows: int = 0
    first_pending_seq: int | None = None
    latest_seq: int = 0

    @property
    def fresh(self) -> bool:
        """Whether the fragment has no maintenance backlog."""
        return self.pending_deltas == 0

    @property
    def age(self) -> int:
        """Writes elapsed since the oldest pending delta (0 when fresh)."""
        if self.first_pending_seq is None:
            return 0
        return max(0, self.latest_seq - self.first_pending_seq + 1)

    def describe(self) -> Mapping[str, object]:
        """JSON-friendly snapshot."""
        return {
            "fragment": self.fragment,
            "fresh": self.fresh,
            "pending_deltas": self.pending_deltas,
            "pending_rows": self.pending_rows,
            "age": self.age,
        }


@dataclass(slots=True)
class FragmentUsage:
    """Per-fragment read-side counters fed by the facade's query path.

    ``reads`` counts the queries whose chosen plan accessed the fragment;
    ``ewma_latency_seconds`` smooths the elapsed time of those queries
    (attributed to every fragment the plan touched — a per-plan figure, not a
    per-access one, but drift in it still localizes to the fragments the
    shifted workload hits).  The drift monitor reads these to find hot and
    cold fragments.
    """

    fragment: str
    reads: int = 0
    ewma_latency_seconds: float | None = None

    def describe(self) -> Mapping[str, object]:
        """JSON-friendly counters."""
        return {
            "fragment": self.fragment,
            "reads": self.reads,
            "ewma_latency_seconds": self.ewma_latency_seconds,
        }


@dataclass(slots=True)
class TenantUsage:
    """Per-tenant serving counters maintained by the query service.

    ``queue_seconds`` / ``engine_seconds`` accumulate each completed query's
    time-in-queue (submission → dispatch) and time-in-engine (dispatch →
    result), so the ratio shows whether a tenant's latency is queueing or
    work.  ``shed_queue_full`` and ``shed_rate_limited`` count fast-rejected
    submissions; ``timed_out`` counts queries whose deadline expired (queued
    or mid-stream).
    """

    tenant: str
    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    timed_out: int = 0
    shed_queue_full: int = 0
    shed_rate_limited: int = 0
    rows_returned: int = 0
    queue_seconds: float = 0.0
    engine_seconds: float = 0.0

    def describe(self) -> Mapping[str, object]:
        """JSON-friendly counters."""
        return {
            "tenant": self.tenant,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "shed_queue_full": self.shed_queue_full,
            "shed_rate_limited": self.shed_rate_limited,
            "rows_returned": self.rows_returned,
            "queue_seconds": self.queue_seconds,
            "engine_seconds": self.engine_seconds,
        }


class StatisticsCatalog:
    """Collects fragment statistics lazily and caches them."""

    def __init__(self, manager: StorageDescriptorManager) -> None:
        self._manager = manager
        self._cache: dict[str, FragmentStatistics] = {}
        self._observed: dict[str, float] = {}
        self._shard_observed: dict[str, dict[int, float]] = {}
        self._tenant_lock = threading.Lock()
        self._tenants: dict[str, TenantUsage] = {}
        self._staleness_lock = threading.Lock()
        self._pending_deltas: dict[str, int] = {}
        self._pending_rows: dict[str, int] = {}
        self._first_pending: dict[str, int] = {}
        self._latest_write_seq = 0
        self._usage_lock = threading.Lock()
        self._usage: dict[str, FragmentUsage] = {}

    # -- fragment staleness accounting ------------------------------------------------
    def note_write_seq(self, seq: int) -> None:
        """Advance the global write clock (ages every stale fragment)."""
        with self._staleness_lock:
            if seq > self._latest_write_seq:
                self._latest_write_seq = seq

    def note_pending_delta(self, fragment: str, rows: int, seq: int) -> None:
        """Record one logged-but-unapplied view delta against ``fragment``.

        ``rows`` is the delta's signed-row volume (inserts + deletes) — the
        work maintenance will do; ``seq`` the global write sequence number of
        the write that produced it.
        """
        with self._staleness_lock:
            self._pending_deltas[fragment] = self._pending_deltas.get(fragment, 0) + 1
            self._pending_rows[fragment] = self._pending_rows.get(fragment, 0) + max(0, rows)
            self._first_pending.setdefault(fragment, seq)
            if seq > self._latest_write_seq:
                self._latest_write_seq = seq

    def clear_staleness(self, fragment: str) -> None:
        """Mark ``fragment`` fully maintained (its backlog was applied)."""
        with self._staleness_lock:
            self._pending_deltas.pop(fragment, None)
            self._pending_rows.pop(fragment, None)
            self._first_pending.pop(fragment, None)

    def fragment_staleness(self, fragment: str) -> FragmentStaleness:
        """The fragment's current maintenance backlog (fresh when untracked)."""
        with self._staleness_lock:
            return FragmentStaleness(
                fragment=fragment,
                pending_deltas=self._pending_deltas.get(fragment, 0),
                pending_rows=self._pending_rows.get(fragment, 0),
                first_pending_seq=self._first_pending.get(fragment),
                latest_seq=self._latest_write_seq,
            )

    def staleness_snapshot(self) -> Mapping[str, Mapping[str, object]]:
        """JSON-friendly staleness of every fragment with a backlog."""
        with self._staleness_lock:
            fragments = sorted(self._pending_deltas)
        return {name: self.fragment_staleness(name).describe() for name in fragments}

    # -- per-tenant serving counters -------------------------------------------------
    def tenant(self, name: str) -> TenantUsage:
        """The tenant's usage record, created on first touch (thread-safe)."""
        with self._tenant_lock:
            usage = self._tenants.get(name)
            if usage is None:
                usage = TenantUsage(tenant=name)
                self._tenants[name] = usage
            return usage

    def record_tenant_event(self, name: str, event: str, count: int = 1) -> None:
        """Bump one tenant counter (``submitted``, ``shed_queue_full``, ...)."""
        usage = self.tenant(name)
        with self._tenant_lock:
            setattr(usage, event, getattr(usage, event) + count)

    def record_tenant_query(
        self,
        name: str,
        outcome: str,
        queue_seconds: float = 0.0,
        engine_seconds: float = 0.0,
        rows: int = 0,
    ) -> None:
        """Fold one finished query into the tenant's counters.

        ``outcome`` is ``completed``, ``failed`` or ``timed_out``; the
        queue/engine split accumulates regardless, so shed load still shows
        its queueing cost.
        """
        usage = self.tenant(name)
        with self._tenant_lock:
            setattr(usage, outcome, getattr(usage, outcome) + 1)
            usage.queue_seconds += max(0.0, queue_seconds)
            usage.engine_seconds += max(0.0, engine_seconds)
            usage.rows_returned += max(0, rows)

    def tenant_usage(self) -> Mapping[str, Mapping[str, object]]:
        """JSON-friendly snapshot of every tenant's serving counters."""
        with self._tenant_lock:
            return {name: usage.describe() for name, usage in sorted(self._tenants.items())}

    # -- per-fragment read usage -------------------------------------------------------
    def record_fragment_read(
        self,
        fragment: str,
        elapsed_seconds: float,
        smoothing: float = READ_LATENCY_SMOOTHING,
    ) -> None:
        """Fold one plan execution that touched ``fragment`` into its usage."""
        with self._usage_lock:
            usage = self._usage.get(fragment)
            if usage is None:
                usage = FragmentUsage(fragment=fragment)
                self._usage[fragment] = usage
            usage.reads += 1
            sample = max(0.0, elapsed_seconds)
            if usage.ewma_latency_seconds is None:
                usage.ewma_latency_seconds = sample
            else:
                usage.ewma_latency_seconds += smoothing * (
                    sample - usage.ewma_latency_seconds
                )

    def fragment_usage(self, fragment: str) -> FragmentUsage:
        """The fragment's read-usage counters (zeroed when never read)."""
        with self._usage_lock:
            usage = self._usage.get(fragment)
            if usage is None:
                return FragmentUsage(fragment=fragment)
            return FragmentUsage(
                fragment=fragment,
                reads=usage.reads,
                ewma_latency_seconds=usage.ewma_latency_seconds,
            )

    def usage_snapshot(self) -> Mapping[str, FragmentUsage]:
        """A copy of every tracked fragment's read usage."""
        with self._usage_lock:
            return {
                name: FragmentUsage(
                    fragment=name,
                    reads=usage.reads,
                    ewma_latency_seconds=usage.ewma_latency_seconds,
                )
                for name, usage in self._usage.items()
            }

    def reset_fragment_usage(self, fragment: str | None = None) -> None:
        """Forget read usage (one fragment or all) — e.g. after a migration."""
        with self._usage_lock:
            if fragment is None:
                self._usage.clear()
            else:
                self._usage.pop(fragment, None)

    def invalidate(self, fragment: str | None = None) -> None:
        """Drop cached statistics and observations (one fragment or all)."""
        if fragment is None:
            self._cache.clear()
            self._observed.clear()
            self._shard_observed.clear()
            with self._staleness_lock:
                self._pending_deltas.clear()
                self._pending_rows.clear()
                self._first_pending.clear()
        else:
            self._cache.pop(fragment, None)
            self._observed.pop(fragment, None)
            self._shard_observed.pop(fragment, None)
            # A re-materialized fragment starts fresh: its backlog (if any)
            # was subsumed by the rebuild.
            self.clear_staleness(fragment)

    # -- the runtime feedback loop --------------------------------------------------
    def observed_cardinality(self, fragment: str) -> float | None:
        """The current exponentially-weighted observed cardinality, if any."""
        return self._observed.get(fragment)

    def record_observation(
        self, fragment: str, observed_rows: int, smoothing: float = OBSERVATION_SMOOTHING
    ) -> float | None:
        """Fold one observed cardinality into the fragment's estimate.

        ``observed_rows`` is the row count of a fully-drained, unrestricted
        scan of the fragment — a direct measurement of its cardinality.  The
        estimate is refreshed as ``previous + smoothing * (observed -
        previous)`` (the first observation replaces the base estimate
        outright).  Returns the **drift**: the relative change of the
        estimate against the value the planner was using before this
        observation, or ``None`` when no prior estimate exists to compare
        against.  Repeated consistent observations converge, so drift decays
        to zero once the estimate has caught up.
        """
        observed = float(max(0, observed_rows))
        previous = self._observed.get(fragment)
        if previous is None:
            try:
                reference = float(self.get(fragment).cardinality)
            except CatalogError:
                reference = None
            refreshed = observed
        else:
            reference = previous
            refreshed = previous + smoothing * (observed - previous)
        self._observed[fragment] = refreshed
        if reference is None:
            return None
        return abs(refreshed - reference) / max(reference, 1.0)

    def record_shard_observation(
        self,
        fragment: str,
        shard: int,
        observed_rows: int,
        smoothing: float = OBSERVATION_SMOOTHING,
    ) -> float | None:
        """Fold one observed *per-shard* cardinality into the shard's estimate.

        The sharded fan-out scans each shard independently, so each exhausted
        per-shard scan measures that shard's row count.  Same EWMA scheme as
        :meth:`record_observation`, tracked per ``(fragment, shard)``; the
        returned drift is relative to the per-shard estimate the planner was
        using, letting the facade invalidate cached sharded plans whose
        fan-out / pruning cost trade-off no longer holds.
        """
        observed = float(max(0, observed_rows))
        per_shard = self._shard_observed.setdefault(fragment, {})
        previous = per_shard.get(shard)
        if previous is None:
            try:
                base = self.refresh(fragment) if fragment not in self._cache else self._cache[fragment]
                reference = float(base.shard_cardinality(shard)) if base.shard_cardinalities else None
            except CatalogError:
                reference = None
            refreshed = observed
        else:
            reference = previous
            refreshed = previous + smoothing * (observed - previous)
        per_shard[shard] = refreshed
        if reference is None:
            return None
        return abs(refreshed - reference) / max(reference, 1.0)

    def observed_shard_cardinality(self, fragment: str, shard: int) -> float | None:
        """The current per-shard observed estimate, if any."""
        return self._shard_observed.get(fragment, {}).get(shard)

    def refresh(self, fragment: str) -> FragmentStatistics:
        """Recompute and cache the statistics of one fragment."""
        descriptor = self._manager.fragment(fragment)
        store = self._manager.store(descriptor.store)
        collection = descriptor.layout.collection
        if collection not in store.collections():
            raise CatalogError(
                f"fragment {fragment!r} maps to collection {collection!r} which is not "
                f"loaded in store {descriptor.store!r}"
            )
        cardinality = store.collection_size(collection)
        distinct: dict[str, int] = {}
        indexed: set[str] = set()
        for view_column in descriptor.view_columns():
            store_column = descriptor.layout.store_column(view_column)
            try:
                column_stats = store.column_statistics(collection, store_column)
            except Exception:  # pragma: no cover - defensive: stats must not break queries
                continue
            distinct[view_column] = int(column_stats.get("distinct", cardinality) or 0)
            if column_stats.get("indexed"):
                indexed.add(view_column)
        # Key columns of lookup fragments are indexed by definition (the store
        # retrieves entries by that key), even when the store cannot report it
        # under the view's column name (e.g. a key-value store's "key").
        for key_column in descriptor.access.key_columns:
            indexed.add(key_column)
            if distinct.get(key_column, 0) <= 1:
                distinct[key_column] = cardinality
        shard_sizes = getattr(store, "shard_sizes", None)
        shard_cardinalities: tuple[int, ...] = ()
        if shard_sizes is not None:
            shard_cardinalities = tuple(shard_sizes(collection))
        statistics = FragmentStatistics(
            fragment=fragment,
            cardinality=cardinality,
            distinct_values=distinct,
            indexed_columns=frozenset(indexed),
            shard_cardinalities=shard_cardinalities,
        )
        self._cache[fragment] = statistics
        return statistics

    def get(self, fragment: str) -> FragmentStatistics:
        """Statistics of ``fragment`` (computed on first access).

        When runtime observations exist for the fragment, the returned
        cardinality is the exponentially-weighted observed estimate instead
        of the (possibly stale) base statistic; per-column distinct counts
        are capped at the refreshed cardinality.
        """
        cached = self._cache.get(fragment)
        if cached is None:
            cached = self.refresh(fragment)
        per_shard = self._shard_observed.get(fragment)
        if per_shard and cached.shard_cardinalities:
            shard_cardinalities = tuple(
                max(0, round(per_shard.get(shard, base)))
                for shard, base in enumerate(cached.shard_cardinalities)
            )
            cardinality = max(1, sum(shard_cardinalities))
            if shard_cardinalities != cached.shard_cardinalities:
                return FragmentStatistics(
                    fragment=fragment,
                    cardinality=cardinality,
                    distinct_values={
                        column: min(count, cardinality)
                        for column, count in dict(cached.distinct_values).items()
                    },
                    indexed_columns=cached.indexed_columns,
                    shard_cardinalities=shard_cardinalities,
                )
            return cached
        observed = self._observed.get(fragment)
        if observed is None:
            return cached
        cardinality = max(1, round(observed))
        if cardinality == cached.cardinality:
            return cached
        return FragmentStatistics(
            fragment=fragment,
            cardinality=cardinality,
            distinct_values={
                column: min(count, cardinality)
                for column, count in dict(cached.distinct_values).items()
            },
            indexed_columns=cached.indexed_columns,
            shard_cardinalities=cached.shard_cardinalities,
        )
