"""Per-fragment statistics gathering for the cost model.

ESTOCADA "estimates the cardinality of [a delegated query's] result, based on
statistics it gathers and stores on the data of each fragment and using
database textbook formulas".  :class:`StatisticsCatalog` collects and caches
those statistics from the stores via the common store interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.catalog.manager import StorageDescriptorManager
from repro.errors import CatalogError

__all__ = ["FragmentStatistics", "StatisticsCatalog"]


@dataclass(frozen=True, slots=True)
class FragmentStatistics:
    """Cardinality and per-column distinct counts of one fragment."""

    fragment: str
    cardinality: int
    distinct_values: Mapping[str, int]
    indexed_columns: frozenset[str]

    def distinct(self, column: str) -> int:
        """Distinct count of a column (defaults to the cardinality)."""
        value = dict(self.distinct_values).get(column)
        if value is None or value <= 0:
            return max(self.cardinality, 1)
        return value

    def selectivity_of_equality(self, column: str) -> float:
        """Textbook selectivity of an equality predicate on ``column``."""
        return 1.0 / max(self.distinct(column), 1)


class StatisticsCatalog:
    """Collects fragment statistics lazily and caches them."""

    def __init__(self, manager: StorageDescriptorManager) -> None:
        self._manager = manager
        self._cache: dict[str, FragmentStatistics] = {}

    def invalidate(self, fragment: str | None = None) -> None:
        """Drop cached statistics (for one fragment or all of them)."""
        if fragment is None:
            self._cache.clear()
        else:
            self._cache.pop(fragment, None)

    def refresh(self, fragment: str) -> FragmentStatistics:
        """Recompute and cache the statistics of one fragment."""
        descriptor = self._manager.fragment(fragment)
        store = self._manager.store(descriptor.store)
        collection = descriptor.layout.collection
        if collection not in store.collections():
            raise CatalogError(
                f"fragment {fragment!r} maps to collection {collection!r} which is not "
                f"loaded in store {descriptor.store!r}"
            )
        cardinality = store.collection_size(collection)
        distinct: dict[str, int] = {}
        indexed: set[str] = set()
        for view_column in descriptor.view_columns():
            store_column = descriptor.layout.store_column(view_column)
            try:
                column_stats = store.column_statistics(collection, store_column)
            except Exception:  # pragma: no cover - defensive: stats must not break queries
                continue
            distinct[view_column] = int(column_stats.get("distinct", cardinality) or 0)
            if column_stats.get("indexed"):
                indexed.add(view_column)
        # Key columns of lookup fragments are indexed by definition (the store
        # retrieves entries by that key), even when the store cannot report it
        # under the view's column name (e.g. a key-value store's "key").
        for key_column in descriptor.access.key_columns:
            indexed.add(key_column)
            if distinct.get(key_column, 0) <= 1:
                distinct[key_column] = cardinality
        statistics = FragmentStatistics(
            fragment=fragment,
            cardinality=cardinality,
            distinct_values=distinct,
            indexed_columns=frozenset(indexed),
        )
        self._cache[fragment] = statistics
        return statistics

    def get(self, fragment: str) -> FragmentStatistics:
        """Statistics of ``fragment`` (computed on first access)."""
        cached = self._cache.get(fragment)
        if cached is not None:
            return cached
        return self.refresh(fragment)
