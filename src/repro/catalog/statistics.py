"""Per-fragment statistics gathering for the cost model.

ESTOCADA "estimates the cardinality of [a delegated query's] result, based on
statistics it gathers and stores on the data of each fragment and using
database textbook formulas".  :class:`StatisticsCatalog` collects and caches
those statistics from the stores via the common store interface.

The catalog also closes the runtime → planner feedback loop: the execution
engine reports the row count of every fully-drained, unrestricted fragment
scan, and :meth:`StatisticsCatalog.record_observation` folds those observed
cardinalities into an exponentially-weighted moving estimate that
:meth:`StatisticsCatalog.get` returns in place of the stale base cardinality.
The returned *drift* (relative change against the estimate the planner was
using) lets the facade invalidate cached plans whose cost estimates no
longer reflect reality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.catalog.manager import StorageDescriptorManager
from repro.errors import CatalogError

__all__ = ["FragmentStatistics", "StatisticsCatalog", "OBSERVATION_SMOOTHING"]

OBSERVATION_SMOOTHING = 0.4
"""Weight of the newest observation in the exponentially-weighted estimate."""


@dataclass(frozen=True, slots=True)
class FragmentStatistics:
    """Cardinality and per-column distinct counts of one fragment.

    ``shard_cardinalities`` is non-empty only for fragments materialized in a
    sharded store: one row count per shard, in shard order.  The cost model
    uses it to price a pruned single-shard access against a full fan-out.
    """

    fragment: str
    cardinality: int
    distinct_values: Mapping[str, int]
    indexed_columns: frozenset[str]
    shard_cardinalities: tuple[int, ...] = ()

    def shard_cardinality(self, shard: int) -> int:
        """Row count of one shard (mean share of the total when unknown)."""
        if 0 <= shard < len(self.shard_cardinalities):
            return self.shard_cardinalities[shard]
        if self.shard_cardinalities:
            return max(1, round(self.cardinality / len(self.shard_cardinalities)))
        return self.cardinality

    def distinct(self, column: str) -> int:
        """Distinct count of a column (defaults to the cardinality)."""
        value = dict(self.distinct_values).get(column)
        if value is None or value <= 0:
            return max(self.cardinality, 1)
        return value

    def selectivity_of_equality(self, column: str) -> float:
        """Textbook selectivity of an equality predicate on ``column``."""
        return 1.0 / max(self.distinct(column), 1)


class StatisticsCatalog:
    """Collects fragment statistics lazily and caches them."""

    def __init__(self, manager: StorageDescriptorManager) -> None:
        self._manager = manager
        self._cache: dict[str, FragmentStatistics] = {}
        self._observed: dict[str, float] = {}
        self._shard_observed: dict[str, dict[int, float]] = {}

    def invalidate(self, fragment: str | None = None) -> None:
        """Drop cached statistics and observations (one fragment or all)."""
        if fragment is None:
            self._cache.clear()
            self._observed.clear()
            self._shard_observed.clear()
        else:
            self._cache.pop(fragment, None)
            self._observed.pop(fragment, None)
            self._shard_observed.pop(fragment, None)

    # -- the runtime feedback loop --------------------------------------------------
    def observed_cardinality(self, fragment: str) -> float | None:
        """The current exponentially-weighted observed cardinality, if any."""
        return self._observed.get(fragment)

    def record_observation(
        self, fragment: str, observed_rows: int, smoothing: float = OBSERVATION_SMOOTHING
    ) -> float | None:
        """Fold one observed cardinality into the fragment's estimate.

        ``observed_rows`` is the row count of a fully-drained, unrestricted
        scan of the fragment — a direct measurement of its cardinality.  The
        estimate is refreshed as ``previous + smoothing * (observed -
        previous)`` (the first observation replaces the base estimate
        outright).  Returns the **drift**: the relative change of the
        estimate against the value the planner was using before this
        observation, or ``None`` when no prior estimate exists to compare
        against.  Repeated consistent observations converge, so drift decays
        to zero once the estimate has caught up.
        """
        observed = float(max(0, observed_rows))
        previous = self._observed.get(fragment)
        if previous is None:
            try:
                reference = float(self.get(fragment).cardinality)
            except CatalogError:
                reference = None
            refreshed = observed
        else:
            reference = previous
            refreshed = previous + smoothing * (observed - previous)
        self._observed[fragment] = refreshed
        if reference is None:
            return None
        return abs(refreshed - reference) / max(reference, 1.0)

    def record_shard_observation(
        self,
        fragment: str,
        shard: int,
        observed_rows: int,
        smoothing: float = OBSERVATION_SMOOTHING,
    ) -> float | None:
        """Fold one observed *per-shard* cardinality into the shard's estimate.

        The sharded fan-out scans each shard independently, so each exhausted
        per-shard scan measures that shard's row count.  Same EWMA scheme as
        :meth:`record_observation`, tracked per ``(fragment, shard)``; the
        returned drift is relative to the per-shard estimate the planner was
        using, letting the facade invalidate cached sharded plans whose
        fan-out / pruning cost trade-off no longer holds.
        """
        observed = float(max(0, observed_rows))
        per_shard = self._shard_observed.setdefault(fragment, {})
        previous = per_shard.get(shard)
        if previous is None:
            try:
                base = self.refresh(fragment) if fragment not in self._cache else self._cache[fragment]
                reference = float(base.shard_cardinality(shard)) if base.shard_cardinalities else None
            except CatalogError:
                reference = None
            refreshed = observed
        else:
            reference = previous
            refreshed = previous + smoothing * (observed - previous)
        per_shard[shard] = refreshed
        if reference is None:
            return None
        return abs(refreshed - reference) / max(reference, 1.0)

    def observed_shard_cardinality(self, fragment: str, shard: int) -> float | None:
        """The current per-shard observed estimate, if any."""
        return self._shard_observed.get(fragment, {}).get(shard)

    def refresh(self, fragment: str) -> FragmentStatistics:
        """Recompute and cache the statistics of one fragment."""
        descriptor = self._manager.fragment(fragment)
        store = self._manager.store(descriptor.store)
        collection = descriptor.layout.collection
        if collection not in store.collections():
            raise CatalogError(
                f"fragment {fragment!r} maps to collection {collection!r} which is not "
                f"loaded in store {descriptor.store!r}"
            )
        cardinality = store.collection_size(collection)
        distinct: dict[str, int] = {}
        indexed: set[str] = set()
        for view_column in descriptor.view_columns():
            store_column = descriptor.layout.store_column(view_column)
            try:
                column_stats = store.column_statistics(collection, store_column)
            except Exception:  # pragma: no cover - defensive: stats must not break queries
                continue
            distinct[view_column] = int(column_stats.get("distinct", cardinality) or 0)
            if column_stats.get("indexed"):
                indexed.add(view_column)
        # Key columns of lookup fragments are indexed by definition (the store
        # retrieves entries by that key), even when the store cannot report it
        # under the view's column name (e.g. a key-value store's "key").
        for key_column in descriptor.access.key_columns:
            indexed.add(key_column)
            if distinct.get(key_column, 0) <= 1:
                distinct[key_column] = cardinality
        shard_sizes = getattr(store, "shard_sizes", None)
        shard_cardinalities: tuple[int, ...] = ()
        if shard_sizes is not None:
            shard_cardinalities = tuple(shard_sizes(collection))
        statistics = FragmentStatistics(
            fragment=fragment,
            cardinality=cardinality,
            distinct_values=distinct,
            indexed_columns=frozenset(indexed),
            shard_cardinalities=shard_cardinalities,
        )
        self._cache[fragment] = statistics
        return statistics

    def get(self, fragment: str) -> FragmentStatistics:
        """Statistics of ``fragment`` (computed on first access).

        When runtime observations exist for the fragment, the returned
        cardinality is the exponentially-weighted observed estimate instead
        of the (possibly stale) base statistic; per-column distinct counts
        are capped at the refreshed cardinality.
        """
        cached = self._cache.get(fragment)
        if cached is None:
            cached = self.refresh(fragment)
        per_shard = self._shard_observed.get(fragment)
        if per_shard and cached.shard_cardinalities:
            shard_cardinalities = tuple(
                max(0, round(per_shard.get(shard, base)))
                for shard, base in enumerate(cached.shard_cardinalities)
            )
            cardinality = max(1, sum(shard_cardinalities))
            if shard_cardinalities != cached.shard_cardinalities:
                return FragmentStatistics(
                    fragment=fragment,
                    cardinality=cardinality,
                    distinct_values={
                        column: min(count, cardinality)
                        for column, count in dict(cached.distinct_values).items()
                    },
                    indexed_columns=cached.indexed_columns,
                    shard_cardinalities=shard_cardinalities,
                )
            return cached
        observed = self._observed.get(fragment)
        if observed is None:
            return cached
        cardinality = max(1, round(observed))
        if cardinality == cached.cardinality:
            return cached
        return FragmentStatistics(
            fragment=fragment,
            cardinality=cardinality,
            distinct_values={
                column: min(count, cardinality)
                for column, count in dict(cached.distinct_values).items()
            },
            indexed_columns=cached.indexed_columns,
            shard_cardinalities=cached.shard_cardinalities,
        )
