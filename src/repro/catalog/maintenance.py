"""Incremental maintenance of materialized fragments under DML.

When a write hits a base relation, every fragment whose defining query
mentions that relation goes stale.  Instead of re-materializing each one
from scratch, the :class:`MaintenanceEngine` keeps a bag-semantics shadow of
the base relations, pushes each write through the fragments' defining
queries with the select/project/join delta rules of
:mod:`repro.core.deltas`, and logs the resulting *view deltas* — typically a
handful of rows — in a per-fragment pending queue.  Applying a pending
delta touches only those rows in the fragment's store, so maintenance cost
scales with the size of the change, not the size of the fragment.

The engine separates *propagation* (computing view deltas at write time;
cheap, always done) from *application* (writing them into the stores; done
eagerly by the facade's default write policy, lazily under ``deferred``, or
forced by a read with ``max_staleness=0``).  Staleness accounting lives in
the :class:`~repro.catalog.statistics.StatisticsCatalog`, so the cost model
can price a stale copy against a fresh one.

``REPRO_INCREMENTAL_MAINTENANCE=0`` switches :meth:`MaintenanceEngine.maintain`
to the recompute fallback — re-evaluate the view over the shadowed base state
from scratch (no delta rules) and apply the difference against the fragment's
tracked contents in one store write — which the differential suite uses as
the baseline the incremental path must agree with.

Failure semantics are all-or-nothing per pending delta: a store error (or a
cancelled maintenance pass) leaves the unapplied entries queued and the
staleness counters standing, so the fragment is *detectably* stale, never
silently wrong.
"""

from __future__ import annotations

import os
import threading
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.catalog.descriptors import StorageDescriptor
from repro.catalog.manager import StorageDescriptorManager
from repro.catalog.statistics import StatisticsCatalog
from repro.core.deltas import (
    BagIndex,
    apply_delta_to_bag,
    bag_difference,
    delta_evaluate,
    evaluate,
)
from repro.core.query import ConjunctiveQuery
from repro.errors import (
    DeltaError,
    MaintenanceCancelledError,
    MaintenanceError,
    StoreError,
    WriteError,
)

__all__ = ["PendingDelta", "MaintenanceEngine", "incremental_enabled"]


def incremental_enabled() -> bool:
    """Whether deltas are applied incrementally (default) or by recompute.

    ``REPRO_INCREMENTAL_MAINTENANCE=0`` selects the recompute fallback:
    maintenance re-evaluates each stale fragment's definition over the base
    state from scratch instead of replaying the logged view deltas.
    Propagation and staleness accounting are identical in both modes — only
    application differs.
    """
    return os.environ.get("REPRO_INCREMENTAL_MAINTENANCE", "1").strip().lower() not in {
        "0",
        "false",
        "off",
    }


@dataclass(frozen=True, slots=True)
class PendingDelta:
    """One logged-but-unapplied view delta of a fragment.

    ``delta`` maps view-row tuples (in view column order) to signed counts:
    positive counts are rows maintenance will insert, negative counts rows
    it will delete.  ``seq`` is the global write sequence number of the
    producing write.
    """

    seq: int
    fragment: str
    delta: Mapping[tuple, int]

    @property
    def row_volume(self) -> int:
        """Unsigned row volume (the work applying this delta will do)."""
        return sum(abs(count) for count in self.delta.values())


@dataclass(slots=True)
class _WatchedFragment:
    """Maintenance state of one fragment: its definition and pending queue.

    ``applied`` is the bag of view rows the fragment's store currently holds
    (advanced only on successful application), which lets the recompute
    fallback derive a correcting delta instead of truncating live replicas.
    """

    descriptor: StorageDescriptor
    definition: ConjunctiveQuery
    view_columns: tuple[str, ...]
    relations: frozenset[str]
    pending: list[PendingDelta]
    applied: Counter


class MaintenanceEngine:
    """Propagates base-relation writes into materialized fragments.

    The engine shadows each writable base relation as a bag of row tuples
    (with hash indexes reused across writes), computes fragment view deltas
    at write time, and applies them on demand.  All public methods are
    thread-safe behind one reentrant lock — writes and maintenance are
    serialized, mirroring a single-writer log.
    """

    def __init__(
        self, manager: StorageDescriptorManager, statistics: StatisticsCatalog
    ) -> None:
        self._manager = manager
        self._statistics = statistics
        self._lock = threading.RLock()
        self._columns: dict[str, tuple[str, ...]] = {}
        self._bags: dict[str, BagIndex] = {}
        self._fragments: dict[str, _WatchedFragment] = {}
        self._next_seq = 0

    # -- base relations ----------------------------------------------------------------
    def register_relation(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Mapping[str, object]] = (),
    ) -> None:
        """Start shadowing base relation ``name`` with the given initial rows."""
        with self._lock:
            order = tuple(columns)
            self._columns[name] = order
            self._bags[name] = BagIndex(
                Counter(tuple(row.get(column) for column in order) for row in rows)
            )

    def has_relation(self, name: str) -> bool:
        """Whether ``name`` is a shadowed (writable) base relation."""
        with self._lock:
            return name in self._bags

    def relation_columns(self, name: str) -> tuple[str, ...]:
        """Column order of a shadowed relation."""
        with self._lock:
            order = self._columns.get(name)
        if order is None:
            raise MaintenanceError(f"relation {name!r} is not registered for writes")
        return order

    def relation_rows(self, name: str) -> list[dict[str, object]]:
        """The shadowed relation's current rows (bag order unspecified)."""
        with self._lock:
            order = self.relation_columns(name)
            bag = self._bags[name].rows
            rows: list[dict[str, object]] = []
            for row, count in bag.items():
                rows.extend(dict(zip(order, row)) for _ in range(count))
            return rows

    # -- fragments ---------------------------------------------------------------------
    def watch_fragment(self, descriptor: StorageDescriptor) -> bool:
        """Start maintaining ``descriptor`` if all its base relations are shadowed.

        Returns False (and leaves the fragment unmanaged) when the defining
        query reads a relation the engine does not shadow — such fragments
        can only be refreshed by re-registration.
        """
        definition = descriptor.view.definition
        relations = frozenset(definition.relations())
        with self._lock:
            if not relations <= set(self._bags):
                return False
            self._fragments[descriptor.fragment_name] = _WatchedFragment(
                descriptor=descriptor,
                definition=definition,
                view_columns=descriptor.view_columns(),
                relations=relations,
                pending=[],
                # At watch time the store holds exactly the view over the
                # current base state (materialization just wrote it).
                applied=Counter(evaluate(definition, self._bags)),
            )
            return True

    @property
    def lock(self) -> threading.RLock:
        """The engine's reentrant lock.

        Live migration holds it across the cutover steps (drain, descriptor
        swap, shadow promotion) so no write can slip between them; acquire it
        *before* any facade planning lock, matching the write path's order.
        """
        return self._lock

    def watch_shadow(
        self, descriptor: StorageDescriptor, chunk_rows: int = 256
    ) -> bool:
        """Start maintaining a *shadow* placement for live migration.

        Unlike :meth:`watch_fragment` — whose store already holds the view —
        the shadow's target collection starts empty: ``applied`` is the empty
        bag, and the view's current contents are queued as chunked *backfill*
        deltas ahead of any dual-written view deltas.  From this call on,
        every base write fans its view delta to the shadow exactly as to the
        live placement; :meth:`maintain` then streams backfill chunks and
        queued writes in order.  Cancelling mid-backfill leaves the shadow
        detectably stale (its counters stand) and the live placement
        untouched.  Returns False when a base relation is not shadowed.
        """
        definition = descriptor.view.definition
        relations = frozenset(definition.relations())
        with self._lock:
            if not relations <= set(self._bags):
                return False
            name = descriptor.fragment_name
            if name in self._fragments:
                raise MaintenanceError(f"fragment {name!r} is already watched")
            content = evaluate(definition, self._bags)
            pending: list[PendingDelta] = []
            chunk: dict[tuple, int] = {}
            volume = 0
            for row, count in content.items():
                chunk[row] = count
                volume += abs(count)
                if volume >= max(1, chunk_rows):
                    pending.append(PendingDelta(seq=self._next_seq, fragment=name, delta=chunk))
                    chunk = {}
                    volume = 0
            if chunk:
                pending.append(PendingDelta(seq=self._next_seq, fragment=name, delta=chunk))
            self._fragments[name] = _WatchedFragment(
                descriptor=descriptor,
                definition=definition,
                view_columns=descriptor.view_columns(),
                relations=relations,
                pending=pending,
                applied=Counter(),
            )
            for entry in pending:
                self._statistics.note_pending_delta(name, entry.row_volume, entry.seq)
            return True

    def promote_shadow(self, shadow: str, descriptor: StorageDescriptor) -> None:
        """Cutover bookkeeping: the shadow becomes the fragment's live watch.

        The shadow's maintenance state (applied bag, any residual pending
        deltas) carries over to ``descriptor.fragment_name``, replacing the
        old placement's watch; staleness counters are re-keyed accordingly.
        The caller holds :attr:`lock` across the catalog swap and this call
        so no write lands in between.
        """
        with self._lock:
            watched = self._fragments.pop(shadow, None)
            if watched is None:
                raise MaintenanceError(f"shadow fragment {shadow!r} is not watched")
            name = descriptor.fragment_name
            definition = descriptor.view.definition
            pending = [
                PendingDelta(seq=entry.seq, fragment=name, delta=entry.delta)
                for entry in watched.pending
            ]
            self._fragments[name] = _WatchedFragment(
                descriptor=descriptor,
                definition=definition,
                view_columns=descriptor.view_columns(),
                relations=frozenset(definition.relations()),
                pending=pending,
                applied=watched.applied,
            )
            self._statistics.clear_staleness(shadow)
            self._statistics.clear_staleness(name)
            for entry in pending:
                self._statistics.note_pending_delta(name, entry.row_volume, entry.seq)

    def unwatch_fragment(self, name: str) -> None:
        """Stop maintaining a fragment (dropped or re-registered)."""
        with self._lock:
            self._fragments.pop(name, None)

    def watched_fragments(self) -> tuple[str, ...]:
        """Names of the fragments under incremental maintenance."""
        with self._lock:
            return tuple(sorted(self._fragments))

    def compute_fragment_rows(
        self, descriptor: StorageDescriptor
    ) -> list[dict[str, object]]:
        """Evaluate a fragment's definition over the shadowed base state.

        Used to materialize fragments registered *after* data was loaded, so
        the store contents agree exactly (bag semantics) with what the delta
        rules will maintain.
        """
        with self._lock:
            result = evaluate(descriptor.view.definition, self._bags)
            columns = descriptor.view_columns()
            rows: list[dict[str, object]] = []
            for row, count in result.items():
                rows.extend(dict(zip(columns, row)) for _ in range(count))
            return rows

    def pending(self, fragment: str) -> tuple[PendingDelta, ...]:
        """The fragment's queued (unapplied) view deltas, oldest first."""
        with self._lock:
            watched = self._fragments.get(fragment)
            return tuple(watched.pending) if watched else ()

    def stale_fragments(self) -> tuple[str, ...]:
        """Fragments with at least one pending delta."""
        with self._lock:
            return tuple(
                sorted(name for name, w in self._fragments.items() if w.pending)
            )

    # -- the write path ----------------------------------------------------------------
    def apply_write(
        self,
        relation: str,
        inserts: Sequence[Mapping[str, object]] = (),
        deletes: Sequence[Mapping[str, object]] = (),
    ) -> tuple[int, tuple[str, ...]]:
        """Apply one write to the shadowed base state and log fragment deltas.

        Computes each affected fragment's view delta against the *old* base
        state (the delta rules' contract), appends it to the fragment's
        pending queue, then advances the base bags.  Returns the write's
        global sequence number and the fragments whose queues grew.  Raises
        :class:`DeltaError` when a delete matches no stored row — the base
        write is then refused outright.
        """
        with self._lock:
            order = self.relation_columns(relation)
            delta: Counter = Counter()
            for row in inserts:
                delta[tuple(row.get(column) for column in order)] += 1
            for row in deletes:
                delta[tuple(row.get(column) for column in order)] -= 1
            delta = Counter({row: count for row, count in delta.items() if count})
            base = self._bags[relation]
            # Refuse deletes of absent rows before anything is logged.
            for row, count in delta.items():
                if base.rows[row] + count < 0:
                    raise DeltaError(
                        f"relation {relation!r}: delete of {dict(zip(order, row))!r} "
                        "matches no stored row"
                    )
            self._next_seq += 1
            seq = self._next_seq
            self._statistics.note_write_seq(seq)
            affected: list[str] = []
            if delta:
                for watched in self._fragments.values():
                    if relation not in watched.relations:
                        continue
                    view_delta = delta_evaluate(
                        watched.definition, self._bags, {relation: delta}
                    )
                    if not view_delta:
                        continue
                    entry = PendingDelta(
                        seq=seq,
                        fragment=watched.descriptor.fragment_name,
                        delta=dict(view_delta),
                    )
                    watched.pending.append(entry)
                    affected.append(entry.fragment)
                    self._statistics.note_pending_delta(
                        entry.fragment, entry.row_volume, seq
                    )
                base.update(delta)
            return seq, tuple(affected)

    # -- maintenance -------------------------------------------------------------------
    def maintain(
        self,
        fragment: str | None = None,
        cancel: threading.Event | None = None,
    ) -> int:
        """Apply pending deltas (one fragment, or every stale fragment).

        Returns the number of store rows written.  Each pending delta is
        applied all-or-nothing; a store failure or a set ``cancel`` event
        leaves the unapplied entries queued (and counted as staleness) and
        raises — :class:`MaintenanceCancelledError` for cancellation, the
        store's own typed error otherwise.
        """
        with self._lock:
            targets = [fragment] if fragment is not None else list(self.stale_fragments())
            written = 0
            for name in targets:
                watched = self._fragments.get(name)
                if watched is None:
                    raise MaintenanceError(f"fragment {name!r} is not under maintenance")
                written += self._maintain_fragment(watched, cancel)
            return written

    def _maintain_fragment(
        self, watched: _WatchedFragment, cancel: threading.Event | None
    ) -> int:
        if not watched.pending:
            return 0
        descriptor = watched.descriptor
        store = self._manager.store(descriptor.store)
        collection = descriptor.layout.collection
        if not incremental_enabled():
            return self._recompute_fragment(watched, store, collection, cancel)
        written = 0
        while watched.pending:
            if cancel is not None and cancel.is_set():
                self._restate_staleness(watched)
                raise MaintenanceCancelledError(
                    f"maintenance of fragment {descriptor.fragment_name!r} cancelled "
                    f"with {len(watched.pending)} delta(s) still pending"
                )
            entry = watched.pending[0]
            inserts, deletes = self._store_delta(watched, entry.delta)
            try:
                written += store.apply_delta(collection, inserts=inserts, deletes=deletes)
            except (StoreError, WriteError, DeltaError):
                # The entry stays queued: the fragment is detectably stale.
                self._restate_staleness(watched)
                raise
            apply_delta_to_bag(watched.applied, entry.delta)
            watched.pending.pop(0)
        self._finish_fragment(watched)
        return written

    def _recompute_fragment(
        self,
        watched: _WatchedFragment,
        store,
        collection: str,
        cancel: threading.Event | None,
    ) -> int:
        """The recompute fallback: re-evaluate from scratch, apply the diff.

        The fragment's desired contents come from a full evaluation of its
        definition over the current base state — the logged view deltas play
        no part, which is what makes this the differential baseline for the
        delta rules.  The correction lands as *one* ``apply_delta`` against
        the tracked store contents rather than a truncate-and-reload, so the
        per-store rollback machinery (sharded, replicated) keeps a failing
        replica from ever exposing a half-materialized fragment.
        """
        if cancel is not None and cancel.is_set():
            self._restate_staleness(watched)
            raise MaintenanceCancelledError(
                f"maintenance of fragment {watched.descriptor.fragment_name!r} "
                "cancelled before recompute"
            )
        desired = Counter(evaluate(watched.definition, self._bags))
        correction = bag_difference(desired, watched.applied)
        inserts, deletes = self._store_delta(watched, correction)
        try:
            written = store.apply_delta(collection, inserts=inserts, deletes=deletes)
        except (StoreError, WriteError, DeltaError):
            self._restate_staleness(watched)
            raise
        watched.applied = desired
        watched.pending.clear()
        self._finish_fragment(watched)
        return written

    def _store_delta(
        self, watched: _WatchedFragment, delta: Mapping[tuple, int]
    ) -> tuple[list[dict[str, object]], list[dict[str, object]]]:
        """Expand a signed view delta into store-side insert/delete rows."""
        layout = watched.descriptor.layout
        store_columns = [layout.store_column(column) for column in watched.view_columns]
        inserts: list[dict[str, object]] = []
        deletes: list[dict[str, object]] = []
        for row, count in delta.items():
            record = dict(zip(store_columns, row))
            target = inserts if count > 0 else deletes
            target.extend(dict(record) for _ in range(abs(count)))
        return inserts, deletes

    def _finish_fragment(self, watched: _WatchedFragment) -> None:
        """Post-apply bookkeeping: the fragment is fresh, its stats changed."""
        name = watched.descriptor.fragment_name
        # invalidate() also clears the staleness counters.
        self._statistics.invalidate(name)

    def _restate_staleness(self, watched: _WatchedFragment) -> None:
        """Re-derive the staleness counters from the surviving queue."""
        name = watched.descriptor.fragment_name
        self._statistics.clear_staleness(name)
        for entry in watched.pending:
            self._statistics.note_pending_delta(name, entry.row_volume, entry.seq)

    # -- durable compaction ------------------------------------------------------------
    def compact_durable(self, stores: Mapping[str, "object"]) -> Mapping[str, object]:
        """Fold every durable store's WAL tail into fresh segments.

        One explicit compaction pass over ``stores`` (name → store), under
        the maintenance lock so no delta application interleaves with the
        generation swap.  Stores without a durable backing report nothing.
        The *write* path needs no equivalent here: each store's
        ``apply_delta`` already appends its delta records to the WAL as the
        delta lands, so compaction only ever folds, never catches up.
        """
        reports: dict[str, object] = {}
        with self._lock:
            for name, store in stores.items():
                compact = getattr(store, "compact_durable", None)
                if compact is None:
                    continue
                report = compact()
                if report is not None:
                    reports[name] = report
        return reports

    # -- introspection -----------------------------------------------------------------
    def describe(self) -> Mapping[str, object]:
        """JSON-friendly maintenance state (facade introspection)."""
        with self._lock:
            return {
                "mode": "incremental" if incremental_enabled() else "recompute",
                "writes": self._next_seq,
                "relations": sorted(self._bags),
                "fragments": {
                    name: {
                        "pending_deltas": len(watched.pending),
                        "pending_rows": sum(e.row_volume for e in watched.pending),
                    }
                    for name, watched in sorted(self._fragments.items())
                },
            }
