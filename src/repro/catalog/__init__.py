"""Catalog: storage descriptors, the descriptor manager and fragment statistics."""

from repro.catalog.descriptors import AccessMethod, Credentials, StorageDescriptor, StorageLayout
from repro.catalog.manager import DatasetInfo, StorageDescriptorManager
from repro.catalog.statistics import FragmentStatistics, StatisticsCatalog

__all__ = [
    "StorageDescriptor",
    "StorageLayout",
    "AccessMethod",
    "Credentials",
    "DatasetInfo",
    "StorageDescriptorManager",
    "StatisticsCatalog",
    "FragmentStatistics",
]
