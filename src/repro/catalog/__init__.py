"""Catalog: storage descriptors, the descriptor manager and fragment statistics."""

from repro.catalog.descriptors import (
    AccessMethod,
    Credentials,
    ShardingSpec,
    StorageDescriptor,
    StorageLayout,
)
from repro.catalog.manager import DatasetInfo, StorageDescriptorManager
from repro.catalog.overlay import CatalogOverlay
from repro.catalog.statistics import FragmentStatistics, StatisticsCatalog

__all__ = [
    "StorageDescriptor",
    "StorageLayout",
    "AccessMethod",
    "Credentials",
    "ShardingSpec",
    "DatasetInfo",
    "StorageDescriptorManager",
    "CatalogOverlay",
    "StatisticsCatalog",
    "FragmentStatistics",
]
