"""Materializing fragments into their target stores.

Given a storage descriptor and the rows of the fragment (computed by
evaluating the fragment's definition over the source dataset), this module
writes the data into the descriptor's store using the store's native loading
API and the descriptor's layout (collection name and column mapping).  It is
used when a dataset is first fragmented, when the storage advisor's
recommendations are accepted, and by the benchmarks when they build the
"before"/"after" configurations of the paper's scenario.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.catalog.descriptors import StorageDescriptor
from repro.errors import CatalogError
from repro.stores.base import Store
from repro.stores.document import DocumentStore
from repro.stores.fulltext import FullTextStore
from repro.stores.keyvalue import KeyValueStore
from repro.stores.parallel import ParallelStore
from repro.stores.relational import RelationalStore
from repro.stores.replicated import ReplicatedStore
from repro.stores.sharded import ShardedStore

__all__ = ["materialize_fragment"]


def _store_rows(
    descriptor: StorageDescriptor, rows: Iterable[Mapping[str, object]]
) -> list[dict[str, object]]:
    """Rename view columns to store columns according to the layout."""
    layout = descriptor.layout
    renamed: list[dict[str, object]] = []
    for row in rows:
        renamed.append({layout.store_column(column): value for column, value in row.items()})
    return renamed


def materialize_fragment(
    store: Store,
    descriptor: StorageDescriptor,
    rows: Sequence[Mapping[str, object]],
    indexes: Sequence[str] = (),
    partitions: int | None = None,
) -> int:
    """Write ``rows`` (keyed by view column names) into the descriptor's store.

    ``indexes`` lists view columns to index after loading; ``partitions``
    overrides the partition count for parallel stores.  Returns the number of
    rows written.
    """
    # Fault-injection wrappers are transparent for loading: write through to
    # the wrapped store so materialization cannot be dropped by the schedule.
    fault_target = getattr(store, "fault_target", None)
    if fault_target is not None:
        return materialize_fragment(
            fault_target, descriptor, rows, indexes=indexes, partitions=partitions
        )

    if isinstance(store, ReplicatedStore):
        # Full-copy replication: every replica receives the whole fragment.
        written = 0
        for replica in store.replica_stores():
            written = materialize_fragment(
                replica, descriptor, rows, indexes=indexes, partitions=partitions
            )
        return written

    collection = descriptor.layout.collection
    store_rows = _store_rows(descriptor, rows)
    view_columns = descriptor.view_columns()
    store_columns = [descriptor.layout.store_column(column) for column in view_columns]

    if isinstance(store, ShardedStore):
        spec = descriptor.sharding
        if spec is None:
            raise CatalogError(
                f"fragment {descriptor.fragment_name!r} targets sharded store "
                f"{store.name!r} but its descriptor carries no sharding spec"
            )
        if spec.shards != store.shard_count:
            raise CatalogError(
                f"fragment {descriptor.fragment_name!r} declares {spec.shards} shards "
                f"but store {store.name!r} has {store.shard_count}"
            )
        # The router can only route a LookupRequest's keys through the
        # sharding spec — it has no column information — so a lookup fragment
        # must be keyed by exactly the shard key, or every probe would hash a
        # foreign value into the wrong shard and silently return nothing.
        if descriptor.access.kind == "lookup" and (
            len(descriptor.access.key_columns) != 1
            or descriptor.access.key_columns[0] != spec.shard_key
        ):
            raise CatalogError(
                f"lookup fragment {descriptor.fragment_name!r} in sharded store "
                f"{store.name!r} must use its shard key {spec.shard_key!r} as the "
                f"single lookup key, got {descriptor.access.key_columns!r}"
            )
        # The spec on the descriptor routes on the *view* column; the router
        # sees store-side rows, so register it under the store-side name.
        store.set_sharding(collection, spec.renamed(descriptor.layout.store_column(spec.shard_key)))
        # Route on the view rows, then materialize each slice into its child
        # store recursively — every shard gets the collection created (and
        # indexed) even when it receives no rows.
        sliced: list[list[Mapping[str, object]]] = [[] for _ in range(store.shard_count)]
        for row in rows:
            sliced[spec.route(row.get(spec.shard_key))].append(row)
        written = 0
        for index, shard_rows in enumerate(sliced):
            written += materialize_fragment(
                store.shard(index), descriptor, shard_rows, indexes=indexes, partitions=partitions
            )
        return written

    if isinstance(store, RelationalStore):
        key_columns = [
            descriptor.layout.store_column(column) for column in descriptor.access.key_columns
        ]
        if collection not in store.collections():
            store.create_table(collection, store_columns, primary_key=key_columns)
        written = store.insert(collection, store_rows)
        for column in indexes:
            store.create_index(collection, descriptor.layout.store_column(column))
        return written

    if isinstance(store, DocumentStore):
        written = store.insert(collection, store_rows)
        for column in indexes:
            store.create_index(collection, descriptor.layout.store_column(column))
        return written

    if isinstance(store, KeyValueStore):
        key_columns = list(descriptor.access.key_columns) or [view_columns[0]]
        key_store_column = descriptor.layout.store_column(key_columns[0])
        store.create_collection(collection)
        store.set_key_column(collection, key_store_column)
        entries: dict[object, object] = {}
        for row in store_rows:
            key = row.get(key_store_column)
            # Keep the key inside the value as well, so rewritings that project
            # the key column find it in the returned rows.
            entries[key] = dict(row)
        return store.put_many(collection, entries)

    if isinstance(store, ParallelStore):
        partition_column = None
        if descriptor.access.key_columns:
            partition_column = descriptor.layout.store_column(descriptor.access.key_columns[0])
        if collection not in store.collections():
            store.create_dataset(collection, partition_column=partition_column, partitions=partitions)
        written = store.insert(collection, store_rows)
        for column in indexes:
            store.create_index(collection, descriptor.layout.store_column(column))
        return written

    if isinstance(store, FullTextStore):
        indexed_fields = [descriptor.layout.store_column(column) for column in indexes] or store_columns
        if collection not in store.collections():
            store.create_collection(collection, indexed_fields=indexed_fields)
        return store.insert(collection, store_rows)

    raise CatalogError(
        f"do not know how to materialize into store type {type(store).__name__}"
    )
