"""Storage descriptors: what fragment is stored where, and how to access it.

Following the paper (Section III, Architecture), each fragment ``Di/Fj``
residing in store ``Sk`` is described by a storage descriptor
``sd(Sk, Di/Fj)`` with three parts:

* **what** — the fragment's definition as a query over the dataset(s), here a
  :class:`~repro.core.views.ViewDefinition` in the pivot model;
* **where** — how the data is laid out inside the store: collection/table
  name and the mapping from the view's columns to the store's columns or
  paths;
* **how** — the access operation the store supports for this fragment (scan,
  key lookup, text search) and the credentials needed to connect (simulated
  here, but kept in the descriptor to mirror the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.binding_patterns import AccessPattern
from repro.core.views import ViewDefinition
from repro.errors import CatalogError
from repro.stores.sharding import ShardingSpec

__all__ = ["AccessMethod", "StorageLayout", "Credentials", "StorageDescriptor", "ShardingSpec"]


@dataclass(frozen=True, slots=True)
class AccessMethod:
    """How a fragment can be retrieved from its store.

    ``kind`` is one of ``"scan"``, ``"lookup"`` or ``"search"``;
    ``key_columns`` names the view columns that must be bound for a lookup.
    """

    kind: str = "scan"
    key_columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in {"scan", "lookup", "search"}:
            raise CatalogError(f"unknown access method kind {self.kind!r}")
        if self.kind == "lookup" and not self.key_columns:
            raise CatalogError("lookup access methods need at least one key column")


@dataclass(frozen=True, slots=True)
class StorageLayout:
    """Where a fragment lives inside its store.

    ``collection`` is the table/collection/dataset name; ``column_mapping``
    maps each view column name to the store-side column or dotted path.
    """

    collection: str
    column_mapping: Mapping[str, str] = field(default_factory=dict)

    def store_column(self, view_column: str) -> str:
        """The store-side name of a view column (defaults to the same name)."""
        return dict(self.column_mapping).get(view_column, view_column)


@dataclass(frozen=True, slots=True)
class Credentials:
    """Connection credentials for the store holding a fragment (simulated)."""

    username: str = "estocada"
    secret: str = "in-process"
    endpoint: str = "local"


@dataclass(frozen=True, slots=True)
class StorageDescriptor:
    """The full descriptor ``sd(Sk, Di/Fj)`` of one stored fragment."""

    fragment_name: str
    dataset: str
    store: str
    view: ViewDefinition
    layout: StorageLayout
    access: AccessMethod = field(default_factory=AccessMethod)
    credentials: Credentials = field(default_factory=Credentials)
    sharding: ShardingSpec | None = None

    def __post_init__(self) -> None:
        if not self.fragment_name:
            raise CatalogError("fragments need a non-empty name")
        if self.view.name != self.fragment_name:
            raise CatalogError(
                f"descriptor name {self.fragment_name!r} does not match view name {self.view.name!r}"
            )
        if self.sharding is not None and self.sharding.shard_key not in self.view_columns():
            raise CatalogError(
                f"shard key {self.sharding.shard_key!r} is not a view column of "
                f"fragment {self.fragment_name!r}"
            )

    # -- derived information used by the rewriting engine and planner -------------
    def view_columns(self) -> tuple[str, ...]:
        """Names of the view's columns (``c0, c1, ...`` when not named)."""
        if self.view.column_names:
            return tuple(self.view.column_names)
        return tuple(f"c{i}" for i in range(self.view.arity))

    def access_pattern(self) -> AccessPattern | None:
        """The binding pattern induced by the access method (lookup → key inputs)."""
        if self.view.access_pattern is not None:
            return self.view.access_pattern
        if self.access.kind != "lookup":
            return None
        columns = self.view_columns()
        pattern = "".join(
            "i" if column in self.access.key_columns else "o" for column in columns
        )
        return AccessPattern(self.fragment_name, pattern)

    def describe(self) -> Mapping[str, object]:
        """A JSON-friendly description (used by the demo-style introspection)."""
        description = {
            "fragment": self.fragment_name,
            "dataset": self.dataset,
            "store": self.store,
            "definition": repr(self.view.definition),
            "collection": self.layout.collection,
            "column_mapping": dict(self.layout.column_mapping),
            "access": {"kind": self.access.kind, "key_columns": list(self.access.key_columns)},
        }
        if self.sharding is not None:
            description["sharding"] = self.sharding.describe()
        return description
