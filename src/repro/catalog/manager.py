"""The Storage Descriptor Manager: registry of datasets, stores and fragments.

One of the boxes of the paper's Figure 1.  It keeps track of which stores are
available, which logical datasets exist (with their pivot-model constraints),
and which fragments (storage descriptors) are currently materialized where.
The query evaluator consults it to obtain the view definitions and access
patterns feeding the rewriting engine, and the translation layer to locate
each fragment's store and layout.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.binding_patterns import AccessPatternRegistry
from repro.core.constraints import Constraint, ConstraintSet
from repro.core.views import ViewDefinition
from repro.catalog.descriptors import StorageDescriptor
from repro.errors import (
    DuplicateRegistrationError,
    UnknownDatasetError,
    UnknownFragmentError,
    UnknownStoreError,
)
from repro.stores.base import Store

__all__ = ["DatasetInfo", "StorageDescriptorManager"]


@dataclass(slots=True)
class DatasetInfo:
    """A logical dataset: its data model, pivot relations and constraints."""

    name: str
    data_model: str
    relations: tuple[str, ...] = ()
    constraints: ConstraintSet = field(default_factory=ConstraintSet)
    description: str = ""


class StorageDescriptorManager:
    """Registry of stores, datasets and fragment descriptors.

    All reads and mutations synchronize on one reentrant lock, so concurrent
    service queries can never observe a half-applied registration (descriptor
    visible but epochs not yet bumped, or vice versa) while a migration or
    advisor-driven reorganization mutates the catalog.  The lock is strictly
    leaf-level: no method calls out to stores, planners or other locked
    components while holding it.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._stores: dict[str, Store] = {}
        self._datasets: dict[str, DatasetInfo] = {}
        self._fragments: dict[str, StorageDescriptor] = {}
        self._version = 0
        self._epoch_clock = 0
        self._relation_epochs: dict[str, int] = {}
        self._structural_epoch = 0

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every catalog mutation.

        Kept for backwards compatibility and coarse change detection; cached
        plans key on the finer-grained per-relation epochs instead (see
        :meth:`epoch_signature`), so registering fragment #5000 does not
        invalidate plans that never touch its relations.
        """
        with self._lock:
            return self._version

    # -- epochs -------------------------------------------------------------------------
    @property
    def structural_epoch(self) -> int:
        """Epoch bumped by schema-level changes (dataset registration).

        Dataset constraints can affect the rewriting of *any* query, so plans
        must additionally key on this coarse epoch.
        """
        with self._lock:
            return self._structural_epoch

    def relation_epoch(self, relation: str) -> int:
        """Epoch of one relation signature (0 while never mutated)."""
        with self._lock:
            return self._relation_epochs.get(relation, 0)

    def epoch_signature(self, relations: Iterable[str]) -> tuple[tuple[str, int], ...]:
        """Sorted ``(relation, epoch)`` pairs for a set of relations.

        A cached plan whose key embeds this signature over the relations it
        can possibly touch stays valid exactly until one of those relations'
        fragments changes.
        """
        with self._lock:
            return tuple(
                (relation, self._relation_epochs.get(relation, 0))
                for relation in sorted(set(relations))
            )

    def fragment_relations(self, descriptor: StorageDescriptor) -> frozenset[str]:
        """The relation signature of a fragment: its body relations + its name."""
        return descriptor.view.definition.relations() | {descriptor.fragment_name}

    def _bump_relations(self, relations: Iterable[str]) -> None:
        with self._lock:
            self._epoch_clock += 1
            for relation in relations:
                self._relation_epochs[relation] = self._epoch_clock

    def note_data_write(self, relations: Iterable[str]) -> None:
        """Record a *data* change to ``relations`` (DML, not DDL).

        Bumps only the touched relations' epochs so cached plans that read
        them re-validate, without bumping :attr:`version` — the set of
        fragments and views is unchanged, so the rewriter's view index stays
        valid and queries over untouched relations keep their cached plans.
        """
        self._bump_relations(relations)

    # -- stores ---------------------------------------------------------------------
    def register_store(self, name: str, store: Store) -> None:
        """Register a store under ``name``."""
        with self._lock:
            if name in self._stores:
                raise DuplicateRegistrationError(f"store {name!r} is already registered")
            self._stores[name] = store
            self._version += 1

    def unregister_store(self, name: str) -> None:
        """Remove a store (its fragments must have been dropped first)."""
        with self._lock:
            if name not in self._stores:
                raise UnknownStoreError(f"store {name!r} is not registered")
            still_used = [f.fragment_name for f in self._fragments.values() if f.store == name]
            if still_used:
                raise DuplicateRegistrationError(
                    f"store {name!r} still hosts fragments {still_used}; drop them first"
                )
            del self._stores[name]
            self._version += 1

    def store(self, name: str) -> Store:
        """Look up a registered store."""
        with self._lock:
            store = self._stores.get(name)
        if store is None:
            raise UnknownStoreError(f"store {name!r} is not registered")
        return store

    def stores(self) -> Mapping[str, Store]:
        """All registered stores by name."""
        with self._lock:
            return dict(self._stores)

    # -- datasets ---------------------------------------------------------------------
    def register_dataset(
        self,
        name: str,
        data_model: str,
        relations: Sequence[str] = (),
        constraints: Iterable[Constraint] = (),
        description: str = "",
    ) -> DatasetInfo:
        """Register a logical dataset and its pivot-model constraints."""
        with self._lock:
            if name in self._datasets:
                raise DuplicateRegistrationError(f"dataset {name!r} is already registered")
            info = DatasetInfo(
                name=name,
                data_model=data_model,
                relations=tuple(relations),
                constraints=ConstraintSet(constraints),
                description=description,
            )
            self._datasets[name] = info
            self._version += 1
            self._structural_epoch += 1
            return info

    def dataset(self, name: str) -> DatasetInfo:
        """Look up a registered dataset."""
        with self._lock:
            info = self._datasets.get(name)
        if info is None:
            raise UnknownDatasetError(f"dataset {name!r} is not registered")
        return info

    def datasets(self) -> Mapping[str, DatasetInfo]:
        """All registered datasets by name."""
        with self._lock:
            return dict(self._datasets)

    # -- fragments -----------------------------------------------------------------------
    def register_fragment(self, descriptor: StorageDescriptor) -> None:
        """Register a fragment descriptor (its dataset and store must exist)."""
        with self._lock:
            if descriptor.fragment_name in self._fragments:
                raise DuplicateRegistrationError(
                    f"fragment {descriptor.fragment_name!r} is already registered"
                )
            if descriptor.dataset not in self._datasets:
                raise UnknownDatasetError(
                    f"fragment {descriptor.fragment_name!r} references unknown dataset "
                    f"{descriptor.dataset!r}"
                )
            if descriptor.store not in self._stores:
                raise UnknownStoreError(
                    f"fragment {descriptor.fragment_name!r} references unknown store "
                    f"{descriptor.store!r}"
                )
            self._fragments[descriptor.fragment_name] = descriptor
            self._version += 1
            self._bump_relations(self.fragment_relations(descriptor))

    def drop_fragment(self, name: str) -> StorageDescriptor:
        """Remove a fragment descriptor and return it."""
        with self._lock:
            descriptor = self._fragments.pop(name, None)
            if descriptor is None:
                raise UnknownFragmentError(f"fragment {name!r} is not registered")
            self._version += 1
            self._bump_relations(self.fragment_relations(descriptor))
            return descriptor

    def replace_fragment(self, descriptor: StorageDescriptor) -> StorageDescriptor:
        """Atomically swap a fragment's descriptor for a new placement.

        The cutover primitive of live migration: readers either see the old
        placement or the new one — never a window where the fragment is
        missing (a concurrent planner would then silently produce plans
        without it).  Returns the previous descriptor.  Epochs of both
        placements' relation signatures are bumped once.
        """
        name = descriptor.fragment_name
        with self._lock:
            previous = self._fragments.get(name)
            if previous is None:
                raise UnknownFragmentError(f"fragment {name!r} is not registered")
            if descriptor.dataset not in self._datasets:
                raise UnknownDatasetError(
                    f"fragment {name!r} references unknown dataset {descriptor.dataset!r}"
                )
            if descriptor.store not in self._stores:
                raise UnknownStoreError(
                    f"fragment {name!r} references unknown store {descriptor.store!r}"
                )
            self._fragments[name] = descriptor
            self._version += 1
            self._bump_relations(
                self.fragment_relations(previous) | self.fragment_relations(descriptor)
            )
            return previous

    def fragment(self, name: str) -> StorageDescriptor:
        """Look up a fragment descriptor."""
        with self._lock:
            descriptor = self._fragments.get(name)
        if descriptor is None:
            raise UnknownFragmentError(f"fragment {name!r} is not registered")
        return descriptor

    def fragments(self, dataset: str | None = None, store: str | None = None
                  ) -> list[StorageDescriptor]:
        """Fragment descriptors, optionally filtered by dataset and/or store."""
        with self._lock:
            result = list(self._fragments.values())
        if dataset is not None:
            result = [d for d in result if d.dataset == dataset]
        if store is not None:
            result = [d for d in result if d.store == store]
        return result

    # -- derived inputs for the rewriting engine -----------------------------------------
    def view_definitions(self, datasets: Iterable[str] | None = None) -> list[ViewDefinition]:
        """The view definitions of the registered fragments.

        When ``datasets`` is given, only fragments over those datasets are
        returned (the evaluator passes the datasets touched by the query).
        """
        wanted = set(datasets) if datasets is not None else None
        views: list[ViewDefinition] = []
        with self._lock:
            descriptors = list(self._fragments.values())
        for descriptor in descriptors:
            if wanted is not None and descriptor.dataset not in wanted:
                continue
            views.append(self.resolved_view(descriptor))
        return views

    def resolved_view(self, descriptor: StorageDescriptor) -> ViewDefinition:
        """One fragment's view definition with its access pattern resolved."""
        view = descriptor.view
        pattern = descriptor.access_pattern()
        if pattern is not None and view.access_pattern is None:
            view = ViewDefinition(
                name=view.name,
                definition=view.definition,
                access_pattern=pattern,
                store=descriptor.store,
                column_names=view.column_names,
            )
        return view

    def access_pattern_registry(self) -> AccessPatternRegistry:
        """Binding patterns of every registered fragment."""
        registry = AccessPatternRegistry()
        with self._lock:
            descriptors = list(self._fragments.values())
        for descriptor in descriptors:
            pattern = descriptor.access_pattern()
            if pattern is not None:
                registry.register(pattern)
        return registry

    def schema_constraints(self, datasets: Iterable[str] | None = None) -> ConstraintSet:
        """The union of the constraints of the chosen datasets (all by default)."""
        wanted = set(datasets) if datasets is not None else None
        constraints = ConstraintSet()
        with self._lock:
            infos = list(self._datasets.values())
        for info in infos:
            if wanted is not None and info.name not in wanted:
                continue
            constraints.extend(info.constraints)
        return constraints

    def describe(self) -> Mapping[str, object]:
        """A JSON-friendly snapshot of the whole catalog (demo-style inspection)."""
        with self._lock:
            return {
                "stores": {name: store.capabilities().data_model for name, store in self._stores.items()},
                "datasets": {name: info.data_model for name, info in self._datasets.items()},
                "fragments": {name: d.describe() for name, d in self._fragments.items()},
            }
