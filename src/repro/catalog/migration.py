"""Live fragment migration: dual-write, backfill, cutover — or roll back.

The self-tuning loop's actuator.  When the drift monitor (or an operator)
decides a fragment should live in a different store, the
:class:`MigrationEngine` moves it without ever taking the fragment out of
service:

1. **dual-write** — the new placement is registered *shadow-only*: an empty
   collection in the target store plus a maintenance watch
   (:meth:`~repro.catalog.maintenance.MaintenanceEngine.watch_shadow`) whose
   pending queue is seeded with chunked backfill deltas of the view's current
   contents.  The shadow never enters the descriptor manager, so planners
   cannot see it; from this moment every base-relation write fans its view
   delta to both placements through the ordinary maintenance machinery.
2. **backfill** — :meth:`Estocada.maintain` streams the backfill chunks and
   any queued dual-written deltas, in order, into the target store.
3. **cutover** — under the maintenance engine's lock (no write can land) the
   residual queue is drained, the descriptor manager atomically swaps the
   fragment's descriptor to the new placement
   (:meth:`~repro.catalog.manager.StorageDescriptorManager.replace_fragment`),
   the persistent rewriter is updated in place, only the touched relations'
   cached plans are invalidated, and the shadow's maintenance state is
   promoted to the live watch.

A cancelled or failed migration **rolls back**: the shadow watch is removed,
its staleness counters cleared and the half-built target collection
truncated — the old placement served every read throughout and keeps serving
them, so reads are bag-identical to a deployment that never migrated.  There
is no phase in which a kill can leave the catalog half-cut: before cutover
the old descriptor is untouched, and the cutover itself is a single locked
descriptor swap.

Fragments whose base relations are not shadowed by the maintenance engine
(no DML can reach them) migrate by *offline copy*: scan the source store,
chunk-load the target, then the same atomic cutover.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

from repro.catalog.descriptors import StorageDescriptor, StorageLayout
from repro.catalog.materialize import materialize_fragment
from repro.core.views import ViewDefinition
from repro.errors import (
    DeltaError,
    MaintenanceCancelledError,
    MaintenanceError,
    MigrationError,
    ReproError,
    StoreError,
    WriteError,
)
from repro.stores.base import ScanRequest, Store
from repro.stores.sharded import ShardedStore

__all__ = ["Migration", "MigrationEngine", "SHADOW_SUFFIX", "BACKFILL_CHUNK_ROWS"]

SHADOW_SUFFIX = "__migrating"
"""Suffix of the shadow placement's fragment name while a migration runs."""

BACKFILL_CHUNK_ROWS = 256
"""Default rows per backfill chunk (bounds the work between cancel checks)."""


@dataclass(slots=True)
class Migration:
    """The record of one migration attempt (live telemetry + history)."""

    fragment: str
    source_store: str
    target_store: str
    collection: str
    phase: str = "pending"
    managed: bool = True
    backfill_rows: int = 0
    error: str | None = None

    @property
    def finished(self) -> bool:
        """Whether the migration reached a terminal phase."""
        return self.phase in {"done", "rolled_back", "failed"}

    def describe(self) -> Mapping[str, object]:
        """JSON-friendly snapshot (surfaces in ``summary()["migrations"]``)."""
        return {
            "fragment": self.fragment,
            "source_store": self.source_store,
            "target_store": self.target_store,
            "collection": self.collection,
            "phase": self.phase,
            "managed": self.managed,
            "backfill_rows": self.backfill_rows,
            "error": self.error,
        }


class MigrationEngine:
    """Moves one fragment at a time between stores, live.

    One engine belongs to one :class:`~repro.estocada.Estocada` facade.
    Migrations are serialized (``_active`` admits one at a time) — each one
    briefly holds the maintenance engine's lock at cutover, and overlapping
    shadow queues for the same relations would multiply write amplification
    for no benefit.
    """

    def __init__(self, estocada) -> None:
        self._estocada = estocada
        self._lock = threading.Lock()
        self._migrations: list[Migration] = []
        self._active: str | None = None
        self._counter = 0

    # -- introspection -----------------------------------------------------------------
    def active(self) -> str | None:
        """The fragment currently migrating, if any."""
        with self._lock:
            return self._active

    def describe(self) -> list[Mapping[str, object]]:
        """Every migration attempted so far, oldest first."""
        with self._lock:
            return [migration.describe() for migration in self._migrations]

    # -- the migration ------------------------------------------------------------------
    def migrate(
        self,
        fragment: str,
        target_store: str,
        cancel: threading.Event | None = None,
        chunk_rows: int = BACKFILL_CHUNK_ROWS,
        phase_hook: Callable[[str], None] | None = None,
    ) -> Migration:
        """Move ``fragment`` to ``target_store`` and return the migration record.

        A set ``cancel`` event aborts at the next phase boundary or backfill
        chunk; the migration then rolls back (phase ``rolled_back``) and the
        old placement keeps serving.  ``phase_hook`` is called with each
        phase name as it begins — the chaos harness uses it to kill
        migrations at exact points.  Store failures roll back too and
        re-raise as :class:`MigrationError`.
        """
        estocada = self._estocada
        old = estocada.catalog.fragment(fragment)
        target = estocada.catalog.store(target_store)
        if old.store == target_store:
            raise MigrationError(
                f"fragment {fragment!r} already lives in store {target_store!r}"
            )
        with self._lock:
            if self._active is not None:
                raise MigrationError(
                    f"migration of {self._active!r} is in flight; migrations are serialized"
                )
            self._active = fragment
            self._counter += 1
            collection = f"{old.layout.collection}__mig{self._counter}"
            migration = Migration(
                fragment=fragment,
                source_store=old.store,
                target_store=target_store,
                collection=collection,
            )
            self._migrations.append(migration)
        try:
            final = self._final_descriptor(old, target_store, target, collection)
            managed = all(
                estocada.maintenance.has_relation(relation)
                for relation in old.view.definition.relations()
            )
            migration.managed = managed
            if managed:
                self._run_managed(migration, old, final, target, cancel, chunk_rows, phase_hook)
            else:
                self._run_offline(migration, old, final, target, cancel, chunk_rows, phase_hook)
        finally:
            with self._lock:
                self._active = None
        return migration

    # -- descriptor plumbing -----------------------------------------------------------
    def _final_descriptor(
        self,
        old: StorageDescriptor,
        target_store: str,
        store: Store,
        collection: str,
    ) -> StorageDescriptor:
        """The post-cutover descriptor: same name and view, new placement."""
        sharding = old.sharding
        if isinstance(store, ShardedStore):
            if sharding is None:
                raise MigrationError(
                    f"fragment {old.fragment_name!r} carries no sharding spec; "
                    f"cannot migrate it into sharded store {target_store!r}"
                )
            if sharding.shards != store.shard_count:
                raise MigrationError(
                    f"fragment {old.fragment_name!r} declares {sharding.shards} shards "
                    f"but store {target_store!r} has {store.shard_count}"
                )
        else:
            sharding = None
        return replace(
            old,
            store=target_store,
            # Identity column mapping: the target collection is materialized
            # fresh under the view's own column names.
            layout=StorageLayout(collection=collection),
            sharding=sharding,
        )

    def _shadow_descriptor(self, final: StorageDescriptor) -> StorageDescriptor:
        shadow_name = final.fragment_name + SHADOW_SUFFIX
        shadow_view = ViewDefinition(
            name=shadow_name,
            definition=final.view.definition,
            column_names=final.view.column_names,
        )
        return replace(final, fragment_name=shadow_name, view=shadow_view)

    @staticmethod
    def _cancelled(cancel: threading.Event | None) -> bool:
        return cancel is not None and cancel.is_set()

    @staticmethod
    def _enter_phase(
        migration: Migration, phase: str, hook: Callable[[str], None] | None
    ) -> None:
        migration.phase = phase
        if hook is not None:
            hook(phase)

    # -- the managed (dual-write) path ---------------------------------------------------
    def _run_managed(
        self,
        migration: Migration,
        old: StorageDescriptor,
        final: StorageDescriptor,
        target: Store,
        cancel: threading.Event | None,
        chunk_rows: int,
        hook: Callable[[str], None] | None,
    ) -> None:
        estocada = self._estocada
        engine = estocada.maintenance
        shadow = self._shadow_descriptor(final)
        shadow_name = shadow.fragment_name

        self._enter_phase(migration, "dual_write", hook)
        if self._cancelled(cancel):
            self._abandon(migration, "cancelled before dual-write began")
            return
        # Create the (empty) target collection, then open the shadow watch:
        # its queue starts with the chunked backfill of the view's current
        # contents, and every subsequent write dual-fans to it.
        materialize_fragment(target, shadow, rows=[])
        if not engine.watch_shadow(shadow, chunk_rows=chunk_rows):
            self._rollback(migration, shadow, target, "base relations lost their shadows")
            raise MigrationError(
                f"fragment {migration.fragment!r} lost its writable base relations"
            )
        try:
            self._enter_phase(migration, "backfill", hook)
            if self._cancelled(cancel):
                raise MaintenanceCancelledError("migration cancelled before backfill")
            migration.backfill_rows += estocada.maintain(shadow_name, cancel=cancel)

            self._enter_phase(migration, "cutover", hook)
            if self._cancelled(cancel):
                raise MaintenanceCancelledError("migration cancelled before cutover")
            with engine.lock:
                # Writes are frozen: drain anything dual-written since the
                # backfill pass, then swap the descriptor atomically.
                migration.backfill_rows += estocada.maintain(shadow_name, cancel=cancel)
                if self._cancelled(cancel):
                    raise MaintenanceCancelledError("migration cancelled at cutover")
                estocada._cutover_descriptor(final, shadow_name)
            migration.phase = "done"
        except MaintenanceCancelledError as error:
            self._rollback(migration, shadow, target, str(error))
        except (StoreError, WriteError, DeltaError, MaintenanceError) as error:
            self._rollback(migration, shadow, target, f"{type(error).__name__}: {error}")
            raise MigrationError(
                f"migration of {migration.fragment!r} to {migration.target_store!r} "
                f"failed and rolled back: {error}"
            ) from error

    # -- the offline-copy path ----------------------------------------------------------
    def _run_offline(
        self,
        migration: Migration,
        old: StorageDescriptor,
        final: StorageDescriptor,
        target: Store,
        cancel: threading.Event | None,
        chunk_rows: int,
        hook: Callable[[str], None] | None,
    ) -> None:
        """Copy-then-cutover for fragments no DML can reach.

        Without writable base relations there is nothing to dual-write: the
        fragment's contents are static, so a chunked scan-and-load of the
        source collection is already consistent.
        """
        estocada = self._estocada

        self._enter_phase(migration, "backfill", hook)
        if self._cancelled(cancel):
            self._abandon(migration, "cancelled before backfill began")
            return
        source = estocada.catalog.store(old.store)
        try:
            store_rows = source.execute(ScanRequest(collection=old.layout.collection)).rows
        except StoreError as error:
            self._abandon(migration, f"{type(error).__name__}: {error}")
            raise MigrationError(
                f"cannot scan fragment {migration.fragment!r} out of store "
                f"{old.store!r}: {error}"
            ) from error
        view_columns = old.view_columns()
        rows = [
            {column: row.get(old.layout.store_column(column)) for column in view_columns}
            for row in store_rows
        ]
        try:
            for start in range(0, max(1, len(rows)), max(1, chunk_rows)):
                if self._cancelled(cancel):
                    raise MaintenanceCancelledError(
                        f"migration cancelled mid-backfill at row {start}"
                    )
                chunk = rows[start : start + max(1, chunk_rows)]
                migration.backfill_rows += materialize_fragment(target, final, chunk)

            self._enter_phase(migration, "cutover", hook)
            if self._cancelled(cancel):
                raise MaintenanceCancelledError("migration cancelled before cutover")
            estocada._cutover_descriptor(final, None)
            migration.phase = "done"
        except MaintenanceCancelledError as error:
            self._rollback(migration, final, target, str(error))
        except (StoreError, WriteError, DeltaError) as error:
            self._rollback(migration, final, target, f"{type(error).__name__}: {error}")
            raise MigrationError(
                f"migration of {migration.fragment!r} to {migration.target_store!r} "
                f"failed and rolled back: {error}"
            ) from error

    # -- rollback ------------------------------------------------------------------------
    def _abandon(self, migration: Migration, reason: str) -> None:
        """Terminal bookkeeping when nothing was built yet."""
        migration.phase = "rolled_back"
        migration.error = reason

    def _rollback(
        self,
        migration: Migration,
        built: StorageDescriptor,
        target: Store,
        reason: str,
    ) -> None:
        """Tear down the half-built placement; the old one never stopped serving."""
        estocada = self._estocada
        estocada.maintenance.unwatch_fragment(built.fragment_name)
        estocada.statistics.clear_staleness(built.fragment_name)
        try:
            target.truncate_collection(built.layout.collection)
        except (ReproError, NotImplementedError):
            # Best effort: an orphaned target collection wastes space but is
            # invisible to planning (the descriptor never entered the catalog).
            pass
        migration.phase = "rolled_back"
        migration.error = reason
