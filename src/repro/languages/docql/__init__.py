"""Document query front-end: a small fluent builder translated to the pivot model.

Applications querying a document dataset use a MongoDB-style builder rather
than SQL.  A :class:`DocumentQuery` selects documents of one logical
collection by equality on dotted paths and projects a set of paths; the
builder translates to a conjunctive query over the collection's *logical
relation* (one column per registered path), which is how document-model
datasets are exposed to the rewriting engine by the facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.query import ConjunctiveQuery
from repro.core.terms import Atom, Constant, Term, Variable
from repro.errors import TranslationError

__all__ = ["DocumentQuery"]


def _path_to_column(path: str) -> str:
    """Dotted paths become column names by replacing dots with underscores."""
    return path.replace(".", "_")


@dataclass(slots=True)
class DocumentQuery:
    """A fluent document query over one logical collection.

    Parameters
    ----------
    collection:
        The logical relation name of the collection (as registered with the
        facade, e.g. ``"carts"``).
    paths:
        The dotted paths exposed by the logical relation, in column order.
    """

    collection: str
    paths: tuple[str, ...]
    _filters: dict[str, object] = field(default_factory=dict)
    _projection: tuple[str, ...] | None = None

    def where(self, path: str, value: object) -> "DocumentQuery":
        """Add an equality filter on a dotted path (returns self for chaining)."""
        if path not in self.paths:
            raise TranslationError(
                f"collection {self.collection!r} does not expose path {path!r}"
            )
        self._filters[path] = value
        return self

    def select(self, *paths: str) -> "DocumentQuery":
        """Project the given paths (all paths when never called)."""
        unknown = [path for path in paths if path not in self.paths]
        if unknown:
            raise TranslationError(
                f"collection {self.collection!r} does not expose paths {unknown}"
            )
        self._projection = tuple(paths)
        return self

    # -- translation ---------------------------------------------------------------
    def to_pivot(self, query_name: str = "Q") -> tuple[ConjunctiveQuery, tuple[str, ...]]:
        """Translate to a pivot conjunctive query plus the output column names."""
        terms: list[Term] = []
        by_path: dict[str, Term] = {}
        for path in self.paths:
            if path in self._filters:
                term: Term = Constant(self._filters[path])
            else:
                term = Variable(_path_to_column(path))
            terms.append(term)
            by_path[path] = term
        projection = self._projection or self.paths
        head_terms = [by_path[path] for path in projection]
        query = ConjunctiveQuery(
            query_name, head_terms, [Atom(self.collection, terms)], name=query_name
        )
        output_names = tuple(_path_to_column(path) for path in projection)
        return query, output_names

    def describe(self) -> Mapping[str, object]:
        """A JSON-friendly description of the query (for demo-style display)."""
        return {
            "collection": self.collection,
            "filters": dict(self._filters),
            "projection": list(self._projection or self.paths),
        }
