"""Native query-language front-ends translated into the pivot model."""

from repro.languages.sql import SqlTranslator, parse_select
from repro.languages.docql import DocumentQuery
from repro.languages.kv import KeyValueApi

__all__ = ["SqlTranslator", "parse_select", "DocumentQuery", "KeyValueApi"]
