"""A small SQL front-end: lexer, AST and recursive-descent parser.

ESTOCADA lets applications keep querying each dataset in its native language;
for relational datasets that language is SQL.  The dialect supported here
covers the conjunctive core used throughout the paper plus the aggregates
needed by the Big-Data-Benchmark-style workload:

.. code-block:: sql

    SELECT [DISTINCT] item [, item ...]
    FROM table [alias] [, table [alias] ...]
    [WHERE condition AND condition ...]
    [GROUP BY column [, column ...]]
    [LIMIT n]

where an item is a (qualified) column, ``*``, an aggregate ``COUNT/SUM/AVG/
MIN/MAX(column | *)`` optionally aliased with ``AS``, and a condition compares
a column with a literal or another column using ``= != < <= > >=``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ParseError

__all__ = [
    "Token",
    "tokenize",
    "ColumnRef",
    "Literal",
    "AggregateItem",
    "SelectItem",
    "Condition",
    "TableRef",
    "SelectStatement",
    "parse_select",
]

_KEYWORDS = {
    "select", "distinct", "from", "where", "and", "group", "by", "limit", "as", "join", "on",
}
_AGGREGATES = {"count", "sum", "avg", "min", "max"}
_TOKEN_SPEC = [
    ("NUMBER", r"\d+(\.\d+)?"),
    ("STRING", r"'(?:[^'\\]|\\.)*'"),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("OP", r"<=|>=|!=|<>|=|<|>"),
    ("STAR", r"\*"),
    ("COMMA", r","),
    ("DOT", r"\."),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("WS", r"\s+"),
]
_MASTER_PATTERN = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its position (for error messages)."""

    kind: str
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`ParseError` on illegal characters."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _MASTER_PATTERN.match(text, position)
        if match is None:
            raise ParseError(f"illegal character {text[position]!r}", position=position)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "WS":
            if kind == "IDENT" and value.lower() in _KEYWORDS:
                tokens.append(Token("KEYWORD", value.lower(), position))
            else:
                tokens.append(Token(kind, value, position))
        position = match.end()
    tokens.append(Token("EOF", "", position))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ColumnRef:
    """A possibly table-qualified column reference."""

    table: str | None
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True, slots=True)
class Literal:
    """A string or numeric literal."""

    value: object


@dataclass(frozen=True, slots=True)
class AggregateItem:
    """An aggregate select item, e.g. ``SUM(r.revenue) AS total``."""

    function: str
    argument: ColumnRef | None
    alias: str


@dataclass(frozen=True, slots=True)
class SelectItem:
    """A plain column select item with an output alias."""

    column: ColumnRef
    alias: str


@dataclass(frozen=True, slots=True)
class Condition:
    """A comparison ``left <op> right`` where right is a column or a literal."""

    left: ColumnRef
    op: str
    right: ColumnRef | Literal


@dataclass(frozen=True, slots=True)
class TableRef:
    """A table reference with its alias (alias defaults to the table name)."""

    table: str
    alias: str


@dataclass(frozen=True, slots=True)
class SelectStatement:
    """The parsed SELECT statement."""

    items: tuple[SelectItem | AggregateItem, ...]
    tables: tuple[TableRef, ...]
    conditions: tuple[Condition, ...]
    group_by: tuple[ColumnRef, ...] = ()
    distinct: bool = False
    select_star: bool = False
    limit: int | None = None

    def aggregates(self) -> tuple[AggregateItem, ...]:
        """The aggregate items of the SELECT list."""
        return tuple(item for item in self.items if isinstance(item, AggregateItem))

    def plain_items(self) -> tuple[SelectItem, ...]:
        """The non-aggregate items of the SELECT list."""
        return tuple(item for item in self.items if isinstance(item, SelectItem))


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: Sequence[Token]) -> None:
        self._tokens = list(tokens)
        self._index = 0
        # JOIN ... ON conditions are folded into the WHERE conditions.
        self._pending_join_conditions: list[Condition] = []

    # -- token helpers -------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value or kind
            raise ParseError(
                f"expected {expected!r} but found {token.value or token.kind!r}",
                position=token.position,
            )
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token.kind == "KEYWORD" and token.value == word:
            self._advance()
            return True
        return False

    # -- grammar -------------------------------------------------------------
    def parse(self) -> SelectStatement:
        self._expect("KEYWORD", "select")
        distinct = self._accept_keyword("distinct")
        items, select_star = self._parse_select_list()
        self._expect("KEYWORD", "from")
        tables = self._parse_from()
        conditions: list[Condition] = []
        if self._accept_keyword("where"):
            conditions = self._parse_conditions()
        group_by: list[ColumnRef] = []
        if self._accept_keyword("group"):
            self._expect("KEYWORD", "by")
            group_by = self._parse_column_list()
        limit: int | None = None
        if self._accept_keyword("limit"):
            token = self._expect("NUMBER")
            limit = int(float(token.value))
        self._expect("EOF")
        return SelectStatement(
            items=tuple(items),
            tables=tuple(tables),
            conditions=tuple(conditions),
            group_by=tuple(group_by),
            distinct=distinct,
            select_star=select_star,
            limit=limit,
        )

    def _parse_select_list(self) -> tuple[list[SelectItem | AggregateItem], bool]:
        items: list[SelectItem | AggregateItem] = []
        select_star = False
        while True:
            token = self._peek()
            if token.kind == "STAR":
                self._advance()
                select_star = True
            elif token.kind == "IDENT" and token.value.lower() in _AGGREGATES and \
                    self._tokens[self._index + 1].kind == "LPAREN":
                items.append(self._parse_aggregate())
            else:
                column = self._parse_column_ref()
                alias = self._parse_optional_alias(default=column.column)
                items.append(SelectItem(column=column, alias=alias))
            if self._peek().kind == "COMMA":
                self._advance()
                continue
            break
        return items, select_star

    def _parse_aggregate(self) -> AggregateItem:
        function = self._advance().value.lower()
        self._expect("LPAREN")
        argument: ColumnRef | None = None
        if self._peek().kind == "STAR":
            self._advance()
        else:
            argument = self._parse_column_ref()
        self._expect("RPAREN")
        default_alias = f"{function}_{argument.column}" if argument else function
        alias = self._parse_optional_alias(default=default_alias)
        return AggregateItem(function=function, argument=argument, alias=alias)

    def _parse_optional_alias(self, default: str) -> str:
        if self._accept_keyword("as"):
            return self._expect("IDENT").value
        if self._peek().kind == "IDENT":
            # bare alias (SELECT col alias)
            return self._advance().value
        return default

    def _parse_from(self) -> list[TableRef]:
        tables = [self._parse_table_ref()]
        while True:
            if self._peek().kind == "COMMA":
                self._advance()
                tables.append(self._parse_table_ref())
            elif self._peek().kind == "KEYWORD" and self._peek().value == "join":
                self._advance()
                tables.append(self._parse_table_ref())
                self._expect("KEYWORD", "on")
                condition = self._parse_condition()
                self._pending_join_conditions.append(condition)
            else:
                break
        return tables

    def _parse_table_ref(self) -> TableRef:
        table = self._expect("IDENT").value
        alias = table
        if self._peek().kind == "IDENT":
            alias = self._advance().value
        return TableRef(table=table, alias=alias)

    def _parse_conditions(self) -> list[Condition]:
        conditions = [self._parse_condition()]
        while self._accept_keyword("and"):
            conditions.append(self._parse_condition())
        return conditions

    def _parse_condition(self) -> Condition:
        left = self._parse_column_ref()
        op_token = self._expect("OP")
        op = "!=" if op_token.value == "<>" else op_token.value
        token = self._peek()
        right: ColumnRef | Literal
        if token.kind in {"NUMBER", "STRING"}:
            right = Literal(self._parse_literal())
        else:
            right = self._parse_column_ref()
        return Condition(left=left, op=op, right=right)

    def _parse_literal(self) -> object:
        token = self._advance()
        if token.kind == "NUMBER":
            value = float(token.value)
            return int(value) if value.is_integer() else value
        if token.kind == "STRING":
            return token.value[1:-1].replace("\\'", "'")
        raise ParseError(f"expected a literal, found {token.value!r}", position=token.position)

    def _parse_column_ref(self) -> ColumnRef:
        first = self._expect("IDENT").value
        if self._peek().kind == "DOT":
            self._advance()
            second = self._expect("IDENT").value
            return ColumnRef(table=first, column=second)
        return ColumnRef(table=None, column=first)

    def _parse_column_list(self) -> list[ColumnRef]:
        columns = [self._parse_column_ref()]
        while self._peek().kind == "COMMA":
            self._advance()
            columns.append(self._parse_column_ref())
        return columns

def parse_select(text: str) -> SelectStatement:
    """Parse a SELECT statement; raises :class:`ParseError` on invalid input."""
    parser = _Parser(tokenize(text))
    statement = parser.parse()
    if parser._pending_join_conditions:
        statement = SelectStatement(
            items=statement.items,
            tables=statement.tables,
            conditions=statement.conditions + tuple(parser._pending_join_conditions),
            group_by=statement.group_by,
            distinct=statement.distinct,
            select_star=statement.select_star,
            limit=statement.limit,
        )
    return statement
