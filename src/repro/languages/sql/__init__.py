"""SQL front-end: parser and translation to the pivot model."""

from repro.languages.sql.parser import SelectStatement, parse_select, tokenize
from repro.languages.sql.translator import (
    ResidualAggregation,
    ResidualPredicate,
    SqlTranslator,
    TranslatedQuery,
)

__all__ = [
    "parse_select",
    "tokenize",
    "SelectStatement",
    "SqlTranslator",
    "TranslatedQuery",
    "ResidualPredicate",
    "ResidualAggregation",
]
