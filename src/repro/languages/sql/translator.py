"""Translation of parsed SQL statements into the pivot model.

The conjunctive core of the statement (tables, column equalities, constant
equality predicates) becomes a :class:`ConjunctiveQuery`; everything the
conjunctive pivot model cannot express — inequality predicates, aggregates,
DISTINCT, LIMIT — is returned as *residual* work for the ESTOCADA runtime to
apply on top of the rewritten plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.query import ConjunctiveQuery
from repro.core.terms import Atom, Constant, Term, Variable
from repro.datamodel.relational import RelationalSchema
from repro.errors import TranslationError
from repro.languages.sql.parser import (
    ColumnRef,
    Condition,
    Literal,
    SelectStatement,
    parse_select,
)

__all__ = ["ResidualPredicate", "ResidualAggregation", "TranslatedQuery", "SqlTranslator"]


@dataclass(frozen=True, slots=True)
class ResidualPredicate:
    """A non-equality predicate the runtime must apply after rewriting."""

    variable: str
    op: str
    value: object
    value_is_column: bool = False


@dataclass(frozen=True, slots=True)
class ResidualAggregation:
    """Aggregation (and grouping) the runtime must apply after rewriting."""

    group_by: tuple[str, ...]
    aggregations: Mapping[str, tuple[str, str | None]]


@dataclass(slots=True)
class TranslatedQuery:
    """The pivot query plus the residual (non-conjunctive) work."""

    query: ConjunctiveQuery
    output_names: tuple[str, ...]
    residual_predicates: tuple[ResidualPredicate, ...] = ()
    aggregation: ResidualAggregation | None = None
    distinct: bool = False
    limit: int | None = None


class SqlTranslator:
    """Translates SQL over a relational dataset schema into the pivot model."""

    def __init__(self, schema: RelationalSchema, query_name: str = "Q") -> None:
        self._schema = schema
        self._query_name = query_name

    # -- public API -----------------------------------------------------------------
    def translate(self, statement: SelectStatement | str) -> TranslatedQuery:
        """Translate a statement (or SQL text) into a :class:`TranslatedQuery`."""
        if isinstance(statement, str):
            statement = parse_select(statement)

        alias_to_table = self._resolve_tables(statement)
        variables = self._build_variables(alias_to_table)
        union_find = _UnionFind(variables)

        residual: list[ResidualPredicate] = []
        constants: dict[str, object] = {}
        # Two passes: column-column equalities first (they change variable
        # representatives), then constants and residual predicates, so every
        # later lookup uses the final representative names.
        for condition in statement.conditions:
            if isinstance(condition.right, ColumnRef) and condition.op == "=":
                union_find.union(
                    self._resolve_column(condition.left, alias_to_table),
                    self._resolve_column(condition.right, alias_to_table),
                )
        for condition in statement.conditions:
            if isinstance(condition.right, ColumnRef) and condition.op == "=":
                continue
            self._apply_condition(condition, alias_to_table, union_find, constants, residual)

        atoms = self._build_atoms(alias_to_table, union_find, constants)
        head_terms, output_names = self._build_head(statement, alias_to_table, union_find, constants)
        query = ConjunctiveQuery(self._query_name, head_terms, atoms, name=self._query_name)

        aggregation = self._build_aggregation(statement, alias_to_table, union_find)
        return TranslatedQuery(
            query=query,
            output_names=output_names,
            residual_predicates=tuple(residual),
            aggregation=aggregation,
            distinct=statement.distinct,
            limit=statement.limit,
        )

    # -- helpers -----------------------------------------------------------------------
    def _resolve_tables(self, statement: SelectStatement) -> dict[str, str]:
        alias_to_table: dict[str, str] = {}
        for reference in statement.tables:
            if reference.table not in self._schema:
                raise TranslationError(f"unknown table {reference.table!r}")
            if reference.alias in alias_to_table:
                raise TranslationError(f"duplicate table alias {reference.alias!r}")
            alias_to_table[reference.alias] = reference.table
        return alias_to_table

    def _build_variables(self, alias_to_table: Mapping[str, str]) -> list[str]:
        names: list[str] = []
        for alias, table_name in alias_to_table.items():
            for column in self._schema.table(table_name).columns:
                names.append(self._variable_name(alias, column))
        return names

    @staticmethod
    def _variable_name(alias: str, column: str) -> str:
        return f"{alias}_{column}"

    def _resolve_column(
        self, reference: ColumnRef, alias_to_table: Mapping[str, str]
    ) -> str:
        if reference.table is not None:
            if reference.table not in alias_to_table:
                raise TranslationError(f"unknown table alias {reference.table!r}")
            table = self._schema.table(alias_to_table[reference.table])
            if reference.column not in table.columns:
                raise TranslationError(
                    f"table {table.name!r} has no column {reference.column!r}"
                )
            return self._variable_name(reference.table, reference.column)
        matches = [
            alias
            for alias, table_name in alias_to_table.items()
            if reference.column in self._schema.table(table_name).columns
        ]
        if not matches:
            raise TranslationError(f"unknown column {reference.column!r}")
        if len(matches) > 1:
            raise TranslationError(f"ambiguous column {reference.column!r} (tables {matches})")
        return self._variable_name(matches[0], reference.column)

    def _apply_condition(
        self,
        condition: Condition,
        alias_to_table: Mapping[str, str],
        union_find: "_UnionFind",
        constants: dict[str, object],
        residual: list[ResidualPredicate],
    ) -> None:
        left = self._resolve_column(condition.left, alias_to_table)
        if isinstance(condition.right, Literal):
            if condition.op == "=":
                representative = union_find.find(left)
                existing = constants.get(representative)
                if existing is not None and existing != condition.right.value:
                    raise TranslationError(
                        f"contradictory constants for {condition.left}: "
                        f"{existing!r} vs {condition.right.value!r}"
                    )
                constants[representative] = condition.right.value
            else:
                residual.append(
                    ResidualPredicate(
                        variable=union_find.find(left),
                        op=condition.op,
                        value=condition.right.value,
                    )
                )
            return
        right = self._resolve_column(condition.right, alias_to_table)
        if condition.op == "=":
            union_find.union(left, right)
        else:
            residual.append(
                ResidualPredicate(
                    variable=union_find.find(left),
                    op=condition.op,
                    value=union_find.find(right),
                    value_is_column=True,
                )
            )

    def _term_for(
        self, variable: str, union_find: "_UnionFind", constants: Mapping[str, object]
    ) -> Term:
        representative = union_find.find(variable)
        if representative in constants:
            return Constant(constants[representative])
        return Variable(representative)

    def _build_atoms(
        self,
        alias_to_table: Mapping[str, str],
        union_find: "_UnionFind",
        constants: Mapping[str, object],
    ) -> list[Atom]:
        atoms: list[Atom] = []
        for alias, table_name in alias_to_table.items():
            table = self._schema.table(table_name)
            terms = [
                self._term_for(self._variable_name(alias, column), union_find, constants)
                for column in table.columns
            ]
            atoms.append(Atom(table_name, terms))
        return atoms

    def _build_head(
        self,
        statement: SelectStatement,
        alias_to_table: Mapping[str, str],
        union_find: "_UnionFind",
        constants: Mapping[str, object],
    ) -> tuple[list[Term], tuple[str, ...]]:
        head_terms: list[Term] = []
        output_names: list[str] = []
        if statement.select_star:
            for alias, table_name in alias_to_table.items():
                for column in self._schema.table(table_name).columns:
                    head_terms.append(
                        self._term_for(self._variable_name(alias, column), union_find, constants)
                    )
                    output_names.append(
                        column if len(alias_to_table) == 1 else self._variable_name(alias, column)
                    )
        for item in statement.plain_items():
            variable = self._resolve_column(item.column, alias_to_table)
            head_terms.append(self._term_for(variable, union_find, constants))
            output_names.append(item.alias)
        # Aggregate arguments and GROUP BY columns must be exposed by the
        # conjunctive core so the runtime can aggregate on top of it.
        for column in statement.group_by:
            variable = self._resolve_column(column, alias_to_table)
            term = self._term_for(variable, union_find, constants)
            if term not in head_terms:
                head_terms.append(term)
                output_names.append(column.column)
        for item in statement.aggregates():
            if item.argument is None:
                continue
            variable = self._resolve_column(item.argument, alias_to_table)
            term = self._term_for(variable, union_find, constants)
            if term not in head_terms:
                head_terms.append(term)
                output_names.append(item.argument.column)
        if not head_terms:
            raise TranslationError("the SELECT list resolves to no output columns")
        return head_terms, tuple(output_names)

    def _build_aggregation(
        self,
        statement: SelectStatement,
        alias_to_table: Mapping[str, str],
        union_find: "_UnionFind",
    ) -> ResidualAggregation | None:
        aggregates = statement.aggregates()
        if not aggregates:
            return None
        group_by = tuple(
            union_find.find(self._resolve_column(column, alias_to_table))
            for column in statement.group_by
        )
        aggregations: dict[str, tuple[str, str | None]] = {}
        for item in aggregates:
            argument = (
                union_find.find(self._resolve_column(item.argument, alias_to_table))
                if item.argument is not None
                else None
            )
            aggregations[item.alias] = (item.function, argument)
        return ResidualAggregation(group_by=group_by, aggregations=aggregations)


class _UnionFind:
    """Union-find over variable names, used to merge equated columns."""

    def __init__(self, names: list[str]) -> None:
        self._parent: dict[str, str] = {name: name for name in names}

    def find(self, name: str) -> str:
        parent = self._parent.setdefault(name, name)
        if parent == name:
            return name
        root = self.find(parent)
        self._parent[name] = root
        return root

    def union(self, left: str, right: str) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            # Deterministic orientation: keep the lexicographically smaller root.
            small, large = sorted((left_root, right_root))
            self._parent[large] = small
