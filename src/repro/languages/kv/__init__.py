"""Key-based search front-end (the native language of key-value datasets).

The key-value API is deliberately tiny: ``get`` and ``mget`` by key over a
logical collection.  Calls translate to parameterized pivot queries whose key
variable is a bound parameter, so the rewriting engine and planner see the
access exactly as the paper describes it (binding patterns with the key as an
input position).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.query import ConjunctiveQuery
from repro.core.terms import Atom, Constant, Variable

__all__ = ["KeyValueApi"]


@dataclass(frozen=True, slots=True)
class KeyValueApi:
    """Key-based access to one logical collection.

    Parameters
    ----------
    collection:
        The logical relation name (as registered with the facade).
    columns:
        The column names of the logical relation; the first one is the key.
    """

    collection: str
    columns: tuple[str, ...]

    def get_query(self, key: object, query_name: str = "Q") -> tuple[ConjunctiveQuery, tuple[str, ...]]:
        """A pivot query fetching the entry stored under ``key``."""
        terms: list[object] = [Constant(key)]
        head: list[object] = []
        names: list[str] = []
        for column in self.columns[1:]:
            variable = Variable(column)
            terms.append(variable)
            head.append(variable)
            names.append(column)
        query = ConjunctiveQuery(query_name, head, [Atom(self.collection, terms)], name=query_name)
        return query, tuple(names)

    def mget_queries(
        self, keys: Sequence[object], query_name: str = "Q"
    ) -> list[tuple[object, ConjunctiveQuery, tuple[str, ...]]]:
        """One pivot query per key (the facade executes them in a batch)."""
        return [(key, *self.get_query(key, query_name=f"{query_name}_{i}")) for i, key in enumerate(keys)]
