"""Pivot encoding of the key-value data model with access-pattern restrictions.

A key-value collection ``C`` maps keys to values (or to field/value maps, as
in Redis hashes or Voldemort stores).  The pivot encoding uses one relation
per collection:

* ``C(key, value)`` for plain collections, or
* ``C(key, field, value)`` for hash collections,

together with the EGD stating that the key (or key+field) functionally
determines the value, and — crucially — an :class:`AccessPattern` with the
key position(s) marked as *input*: the paper's "the value of the key must be
specified in order to access the values associated to this key".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.binding_patterns import AccessPattern
from repro.core.constraints import ConstraintSet, key_constraint
from repro.core.terms import Atom
from repro.datamodel.encoding import DataModelEncoding, RelationSignature
from repro.errors import PivotModelError

__all__ = ["KeyValueCollectionSchema", "KeyValueEncoding"]


@dataclass(frozen=True, slots=True)
class KeyValueCollectionSchema:
    """Schema of one key-value collection.

    ``hash_fields`` lists the value fields when the collection stores hashes
    (field/value maps); when empty the collection stores opaque single values.
    """

    name: str
    hash_fields: tuple[str, ...] = ()

    @property
    def arity(self) -> int:
        """Arity of the pivot relation encoding the collection."""
        return 2 if not self.hash_fields else 1 + len(self.hash_fields)

    def columns(self) -> tuple[str, ...]:
        """Column names of the pivot relation."""
        if not self.hash_fields:
            return ("key", "value")
        return ("key",) + self.hash_fields

    def access_pattern(self) -> AccessPattern:
        """Key must be bound; all other positions are outputs."""
        return AccessPattern(self.name, "i" + "o" * (self.arity - 1))


class KeyValueEncoding(DataModelEncoding):
    """Pivot encoding of a set of key-value collections."""

    model_name = "keyvalue"

    def __init__(self, collections: Iterable[KeyValueCollectionSchema]) -> None:
        self._collections: dict[str, KeyValueCollectionSchema] = {}
        for collection in collections:
            if collection.name in self._collections:
                raise PivotModelError(f"duplicate key-value collection {collection.name!r}")
            self._collections[collection.name] = collection

    @property
    def collections(self) -> Mapping[str, KeyValueCollectionSchema]:
        """The registered collection schemas, by name."""
        return dict(self._collections)

    def signatures(self) -> Sequence[RelationSignature]:
        return [
            RelationSignature(collection.name, collection.columns())
            for collection in self._collections.values()
        ]

    def constraints(self) -> ConstraintSet:
        constraints = ConstraintSet()
        for collection in self._collections.values():
            if collection.arity > 1:
                constraints.add(
                    key_constraint(
                        collection.name,
                        collection.arity,
                        [0],
                        name=f"kv_key_{collection.name}",
                    )
                )
        return constraints

    def access_patterns(self) -> list[AccessPattern]:
        """The binding patterns of every collection (key position is input)."""
        return [collection.access_pattern() for collection in self._collections.values()]

    def encode(self, data: Mapping[str, Mapping[object, object]], **options: object) -> list[Atom]:
        """Encode ``{collection: {key: value-or-field-map}}`` into pivot facts."""
        facts: list[Atom] = []
        for collection_name, entries in data.items():
            collection = self._collections.get(collection_name)
            if collection is None:
                raise PivotModelError(f"unknown key-value collection {collection_name!r}")
            for key, value in entries.items():
                facts.append(self.encode_entry(collection, key, value))
        return facts

    def encode_entry(
        self, collection: KeyValueCollectionSchema, key: object, value: object
    ) -> Atom:
        """Encode one key-value entry into a pivot fact."""
        if not collection.hash_fields:
            return Atom(collection.name, [key, value])
        if not isinstance(value, Mapping):
            raise PivotModelError(
                f"collection {collection.name!r} stores hashes; value for key {key!r} "
                "must be a mapping"
            )
        missing = [f for f in collection.hash_fields if f not in value]
        if missing:
            raise PivotModelError(
                f"hash entry for key {key!r} in {collection.name!r} missing fields {missing}"
            )
        return Atom(collection.name, [key] + [value[f] for f in collection.hash_fields])
