"""Pivot encoding of the relational data model.

A relational table ``T(c1, ..., cn)`` is encoded directly as the pivot
relation ``T`` of the same arity.  The encoding carries the declared keys and
functional dependencies as EGDs and foreign keys as inclusion-dependency TGDs,
so the rewriting engine can exploit them (e.g. to remove redundant joins or to
validate fragment layouts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.constraints import ConstraintSet, functional_dependency, inclusion_dependency, key_constraint
from repro.core.terms import Atom
from repro.datamodel.encoding import DataModelEncoding, RelationSignature
from repro.errors import PivotModelError, SchemaError

__all__ = ["TableSchema", "RelationalSchema", "RelationalEncoding"]


@dataclass(frozen=True, slots=True)
class TableSchema:
    """Schema of one relational table.

    Attributes
    ----------
    name:
        Table name (also the pivot relation name).
    columns:
        Ordered column names.
    primary_key:
        Column names forming the primary key (may be empty).
    functional_dependencies:
        Additional FDs as ``(determinant columns, dependent columns)`` pairs.
    foreign_keys:
        ``(local columns, referenced table, referenced columns)`` triples.
    """

    name: str
    columns: tuple[str, ...]
    primary_key: tuple[str, ...] = ()
    functional_dependencies: tuple[tuple[tuple[str, ...], tuple[str, ...]], ...] = ()
    foreign_keys: tuple[tuple[tuple[str, ...], str, tuple[str, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.columns:
            raise PivotModelError(f"table {self.name!r} needs at least one column")
        unknown = [c for c in self.primary_key if c not in self.columns]
        if unknown:
            raise PivotModelError(f"table {self.name!r}: key columns {unknown} not in schema")

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def position_of(self, column: str) -> int:
        """Index of ``column`` in the table."""
        try:
            return self.columns.index(column)
        except ValueError as exc:
            raise PivotModelError(f"table {self.name!r} has no column {column!r}") from exc

    def signature(self) -> RelationSignature:
        """The pivot relation signature of the table."""
        return RelationSignature(self.name, self.columns)


@dataclass(slots=True)
class RelationalSchema:
    """A collection of table schemas forming one relational dataset."""

    tables: dict[str, TableSchema] = field(default_factory=dict)

    def add(self, table: TableSchema) -> None:
        """Register a table schema (replacing any previous definition)."""
        self.tables[table.name] = table

    def table(self, name: str) -> TableSchema:
        """Look up a table schema by name."""
        try:
            return self.tables[name]
        except KeyError as exc:
            raise PivotModelError(f"unknown table {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def __iter__(self):
        return iter(self.tables.values())

    def __len__(self) -> int:
        return len(self.tables)


class RelationalEncoding(DataModelEncoding):
    """Pivot encoding of a relational schema (identity encoding + constraints)."""

    model_name = "relational"

    def __init__(self, schema: RelationalSchema) -> None:
        self._schema = schema

    @property
    def schema(self) -> RelationalSchema:
        """The encoded relational schema."""
        return self._schema

    def signatures(self) -> Sequence[RelationSignature]:
        return [table.signature() for table in self._schema]

    def constraints(self) -> ConstraintSet:
        constraints = ConstraintSet()
        for table in self._schema:
            if table.primary_key and len(table.primary_key) < table.arity:
                key_positions = [table.position_of(c) for c in table.primary_key]
                constraints.add(
                    key_constraint(table.name, table.arity, key_positions,
                                   name=f"pk_{table.name}")
                )
            for determinant, dependent in table.functional_dependencies:
                constraints.add(
                    functional_dependency(
                        table.name,
                        table.arity,
                        [table.position_of(c) for c in determinant],
                        [table.position_of(c) for c in dependent],
                        name=f"fd_{table.name}_{'_'.join(determinant)}",
                    )
                )
            for local_columns, referenced_table, referenced_columns in table.foreign_keys:
                target = self._schema.table(referenced_table)
                constraints.add(
                    inclusion_dependency(
                        table.name,
                        table.arity,
                        [table.position_of(c) for c in local_columns],
                        target.name,
                        target.arity,
                        [target.position_of(c) for c in referenced_columns],
                        name=f"fk_{table.name}_{referenced_table}",
                    )
                )
        return constraints

    def encode(self, data: Mapping[str, Iterable[Mapping[str, object] | Sequence[object]]],
               **options: object) -> list[Atom]:
        """Encode ``{table name: rows}`` into pivot facts.

        Rows may be mappings (column name → value) or sequences in column
        order; missing columns raise :class:`SchemaError`.
        """
        facts: list[Atom] = []
        for table_name, rows in data.items():
            table = self._schema.table(table_name)
            for row in rows:
                facts.append(self.encode_row(table_name, row))
        return facts

    def encode_row(self, table_name: str, row: Mapping[str, object] | Sequence[object]) -> Atom:
        """Encode a single row of ``table_name`` into a pivot fact."""
        table = self._schema.table(table_name)
        if isinstance(row, Mapping):
            missing = [c for c in table.columns if c not in row]
            if missing:
                raise SchemaError(
                    f"row for table {table_name!r} is missing columns {missing}"
                )
            values = [row[c] for c in table.columns]
        else:
            values = list(row)
            if len(values) != table.arity:
                raise SchemaError(
                    f"row for table {table_name!r} has {len(values)} values, "
                    f"expected {table.arity}"
                )
        return Atom(table_name, values)
