"""Base contract for pivot-model encodings of heterogeneous data models.

ESTOCADA describes every application and storage data model inside the same
relational pivot model plus constraints.  A :class:`DataModelEncoding`
packages, for one data model:

* the names and arities of the pivot relations encoding it (the *signature*),
* the constraints axiomatising the model (e.g. "every node has exactly one
  parent", "every child is a descendant"),
* a way to encode native data (tuples, documents, key-value pairs, nested
  records) into pivot facts, so that the rewriting engine and the tests can
  reason about concrete instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.constraints import Constraint, ConstraintSet
from repro.core.terms import Atom
from repro.errors import PivotModelError

__all__ = ["RelationSignature", "DataModelEncoding"]


@dataclass(frozen=True, slots=True)
class RelationSignature:
    """Name, arity and column names of one pivot relation."""

    name: str
    columns: tuple[str, ...]

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def atom(self, *terms: object) -> Atom:
        """Build an atom over this relation, checking the arity."""
        if len(terms) != self.arity:
            raise PivotModelError(
                f"relation {self.name!r} expects {self.arity} terms, got {len(terms)}"
            )
        return Atom(self.name, terms)

    def position_of(self, column: str) -> int:
        """The index of ``column`` (raises when unknown)."""
        try:
            return self.columns.index(column)
        except ValueError as exc:
            raise PivotModelError(
                f"relation {self.name!r} has no column {column!r}"
            ) from exc


class DataModelEncoding:
    """Abstract base class for pivot-model encodings.

    Subclasses fix the relation signatures and the axioms of one data model;
    :meth:`encode` turns a native instance into pivot facts.
    """

    #: Short identifier of the data model (``"relational"``, ``"document"``, ...).
    model_name: str = "abstract"

    def signatures(self) -> Sequence[RelationSignature]:
        """The pivot relations used by this encoding."""
        raise NotImplementedError

    def constraints(self) -> ConstraintSet:
        """The axioms of the data model, as a constraint set."""
        raise NotImplementedError

    def encode(self, data: object, **options: object) -> list[Atom]:
        """Encode a native instance into pivot facts."""
        raise NotImplementedError

    # -- helpers shared by subclasses -----------------------------------------
    def signature(self, name: str) -> RelationSignature:
        """Look up a relation signature by name."""
        for candidate in self.signatures():
            if candidate.name == name:
                return candidate
        raise PivotModelError(f"{self.model_name} encoding has no relation {name!r}")

    def relation_names(self) -> frozenset[str]:
        """Names of every relation used by the encoding."""
        return frozenset(signature.name for signature in self.signatures())

    def extended_constraints(self, extra: Iterable[Constraint]) -> ConstraintSet:
        """The model axioms plus caller-provided constraints."""
        combined = ConstraintSet(self.constraints())
        combined.extend(extra)
        return combined

    def describe(self) -> Mapping[str, object]:
        """A JSON-friendly description (used by storage descriptors and docs)."""
        return {
            "model": self.model_name,
            "relations": {s.name: list(s.columns) for s in self.signatures()},
            "constraints": len(self.constraints()),
        }
