"""Pivot encoding of the document (JSON) data model.

Following the paper (Section III), a document collection is described with a
small set of virtual relations:

* ``Document(docID, name)`` — a document of the collection;
* ``Root(docID, nodeID)`` — the root node of a document;
* ``Node(nodeID, name)`` — a node and its tag / field name;
* ``Child(parentID, childID)`` — the parent/child edges;
* ``Descendant(ancestorID, descendantID)`` — the transitive closure;
* ``Value(nodeID, value)`` — the scalar value of a leaf node.

The axioms are those quoted in the paper: every node has exactly one tag and
one parent, every child is a descendant, descendants compose transitively,
and every document has exactly one root.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

from repro.core.constraints import EGD, TGD, ConstraintSet
from repro.core.terms import Atom, Variable
from repro.datamodel.encoding import DataModelEncoding, RelationSignature

__all__ = ["DocumentEncoding", "DOCUMENT_RELATIONS"]

DOCUMENT_RELATIONS = {
    "Document": ("docID", "name"),
    "Root": ("docID", "nodeID"),
    "Node": ("nodeID", "name"),
    "Child": ("parentID", "childID"),
    "Descendant": ("ancestorID", "descendantID"),
    "Value": ("nodeID", "value"),
}


class DocumentEncoding(DataModelEncoding):
    """Pivot encoding of JSON-style documents with the paper's virtual relations.

    The optional ``prefix`` namespaces the relation names (``cartsNode`` etc.)
    so that several document collections can coexist in one pivot schema.
    """

    model_name = "document"

    def __init__(self, prefix: str = "") -> None:
        self._prefix = prefix
        self._id_counter = itertools.count()

    # -- naming ----------------------------------------------------------------
    def relation(self, base: str) -> str:
        """The (possibly prefixed) pivot name of one of the document relations."""
        return f"{self._prefix}{base}" if self._prefix else base

    def signatures(self) -> Sequence[RelationSignature]:
        return [
            RelationSignature(self.relation(name), columns)
            for name, columns in DOCUMENT_RELATIONS.items()
        ]

    # -- axioms ------------------------------------------------------------------
    def constraints(self) -> ConstraintSet:
        node = self.relation("Node")
        child = self.relation("Child")
        descendant = self.relation("Descendant")
        root = self.relation("Root")
        value = self.relation("Value")

        n, m, p, c, a, d, x = (Variable(s) for s in "nmpcadx")
        t1, t2 = Variable("t1"), Variable("t2")

        constraints = ConstraintSet()
        # Every node has a single tag.
        constraints.add(EGD(
            [Atom(node, [n, t1]), Atom(node, [n, t2])], [(t1, t2)], name=f"{node}_single_tag"
        ))
        # Every node has a single parent.
        constraints.add(EGD(
            [Atom(child, [p, c]), Atom(child, [m, c])], [(p, m)], name=f"{child}_single_parent"
        ))
        # Every leaf has a single value.
        constraints.add(EGD(
            [Atom(value, [n, t1]), Atom(value, [n, t2])], [(t1, t2)], name=f"{value}_single_value"
        ))
        # Every document has a single root.
        constraints.add(EGD(
            [Atom(root, [d, t1]), Atom(root, [d, t2])], [(t1, t2)], name=f"{root}_single_root"
        ))
        # Every child edge is a descendant edge.
        constraints.add(TGD(
            [Atom(child, [p, c])], [Atom(descendant, [p, c])], name=f"{child}_is_descendant"
        ))
        # Descendant composes with child (transitivity generator).
        constraints.add(TGD(
            [Atom(descendant, [a, x]), Atom(child, [x, d])],
            [Atom(descendant, [a, d])],
            name=f"{descendant}_transitive",
        ))
        return constraints

    # -- instance encoding ---------------------------------------------------------
    def fresh_node_id(self) -> str:
        """A fresh node identifier (used when encoding concrete documents)."""
        return f"{self._prefix or 'doc'}_n{next(self._id_counter)}"

    def encode(self, data: Mapping[str, object] | Sequence[Mapping[str, object]],
               **options: object) -> list[Atom]:
        """Encode one document (or a list of documents) into pivot facts.

        ``options`` may carry ``document_name`` (defaults to ``"doc<i>"``).
        """
        documents: Sequence[Mapping[str, object]]
        if isinstance(data, Mapping):
            documents = [data]
        else:
            documents = list(data)
        facts: list[Atom] = []
        for index, document in enumerate(documents):
            name = str(options.get("document_name", f"doc{index}"))
            facts.extend(self.encode_document(document, document_name=name))
        return facts

    def encode_document(self, document: Mapping[str, object], document_name: str) -> list[Atom]:
        """Encode a single JSON object into the virtual relations."""
        facts: list[Atom] = []
        doc_id = f"{document_name}#id"
        root_id = self.fresh_node_id()
        facts.append(Atom(self.relation("Document"), [doc_id, document_name]))
        facts.append(Atom(self.relation("Root"), [doc_id, root_id]))
        facts.append(Atom(self.relation("Node"), [root_id, "$root"]))
        facts.extend(self._encode_children(root_id, document))
        facts.extend(self._close_descendants(facts))
        return facts

    def _encode_children(self, parent_id: str, value: object) -> list[Atom]:
        facts: list[Atom] = []
        node = self.relation("Node")
        child = self.relation("Child")
        leaf_value = self.relation("Value")
        if isinstance(value, Mapping):
            for key, sub_value in value.items():
                child_id = self.fresh_node_id()
                facts.append(Atom(node, [child_id, str(key)]))
                facts.append(Atom(child, [parent_id, child_id]))
                facts.extend(self._encode_children(child_id, sub_value))
        elif isinstance(value, (list, tuple)):
            for index, item in enumerate(value):
                child_id = self.fresh_node_id()
                facts.append(Atom(node, [child_id, f"[{index}]"]))
                facts.append(Atom(child, [parent_id, child_id]))
                facts.extend(self._encode_children(child_id, item))
        else:
            facts.append(Atom(leaf_value, [parent_id, value]))
        return facts

    def _close_descendants(self, facts: Sequence[Atom]) -> list[Atom]:
        """Materialize the Descendant closure of the Child edges in ``facts``."""
        child = self.relation("Child")
        descendant = self.relation("Descendant")
        edges = [
            (atom.terms[0], atom.terms[1]) for atom in facts if atom.relation == child
        ]
        children_of: dict[object, list[object]] = {}
        for parent, child_node in edges:
            children_of.setdefault(parent, []).append(child_node)
        closure: list[Atom] = []
        for parent in children_of:
            stack = list(children_of[parent])
            seen: set[object] = set()
            while stack:
                node_id = stack.pop()
                if node_id in seen:
                    continue
                seen.add(node_id)
                closure.append(Atom(descendant, [parent, node_id]))
                stack.extend(children_of.get(node_id, ()))
        return closure
