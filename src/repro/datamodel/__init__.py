"""Pivot-model encodings of the heterogeneous data models ESTOCADA supports.

Each encoding maps one native data model (relational, document, key-value,
nested relations) onto the relational pivot model, providing the virtual
relation signatures, the constraints axiomatising the model, and an encoder
for concrete instances.
"""

from repro.datamodel.document import DOCUMENT_RELATIONS, DocumentEncoding
from repro.datamodel.encoding import DataModelEncoding, RelationSignature
from repro.datamodel.keyvalue import KeyValueCollectionSchema, KeyValueEncoding
from repro.datamodel.nested import NestedEncoding, NestedRelationSchema
from repro.datamodel.relational import RelationalEncoding, RelationalSchema, TableSchema

__all__ = [
    "DataModelEncoding",
    "RelationSignature",
    "RelationalEncoding",
    "RelationalSchema",
    "TableSchema",
    "DocumentEncoding",
    "DOCUMENT_RELATIONS",
    "KeyValueEncoding",
    "KeyValueCollectionSchema",
    "NestedEncoding",
    "NestedRelationSchema",
]
