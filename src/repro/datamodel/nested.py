"""Pivot encoding of nested relations (Pig/HBase/Spark-style).

A nested relation has top-level atomic columns plus *nested* columns whose
values are bags of records.  Following the paper's remark that "the encoding
of nested relations ... is very similar" to the document encoding, we encode
a nested relation ``N`` with:

* ``N(rowID, a1, ..., ak)`` — one pivot relation holding the atomic columns
  plus a surrogate row identifier;
* ``N_<nested>(rowID, b1, ..., bm)`` — one pivot relation per nested column,
  linking the inner records to their parent row.

The row identifier is a key of the top-level relation, and each nested
relation has an inclusion dependency into the top-level one (every inner
record belongs to an existing row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.constraints import ConstraintSet, inclusion_dependency, key_constraint
from repro.core.terms import Atom
from repro.datamodel.encoding import DataModelEncoding, RelationSignature
from repro.errors import PivotModelError, SchemaError

__all__ = ["NestedRelationSchema", "NestedEncoding"]


@dataclass(frozen=True, slots=True)
class NestedRelationSchema:
    """Schema of a nested relation.

    Attributes
    ----------
    name:
        Relation name.
    atomic_columns:
        Top-level atomic column names.
    nested_columns:
        Mapping from nested column name to the inner record's column names.
    key:
        Atomic columns forming a key of the top level (optional; a surrogate
        ``rowID`` is always added and is always a key).
    """

    name: str
    atomic_columns: tuple[str, ...]
    nested_columns: tuple[tuple[str, tuple[str, ...]], ...] = ()
    key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.atomic_columns and not self.nested_columns:
            raise PivotModelError(f"nested relation {self.name!r} has no columns")
        for column in self.key:
            if column not in self.atomic_columns:
                raise PivotModelError(
                    f"nested relation {self.name!r}: key column {column!r} is not atomic"
                )

    def top_level_relation(self) -> str:
        """Pivot relation name of the top level."""
        return self.name

    def nested_relation(self, nested_column: str) -> str:
        """Pivot relation name of one nested column."""
        return f"{self.name}_{nested_column}"

    def top_level_columns(self) -> tuple[str, ...]:
        """Columns of the top-level pivot relation (surrogate id first)."""
        return ("rowID",) + self.atomic_columns

    def nested_column_names(self) -> tuple[str, ...]:
        """Names of the nested columns."""
        return tuple(name for name, _ in self.nested_columns)

    def inner_columns(self, nested_column: str) -> tuple[str, ...]:
        """Columns of one nested column's pivot relation (parent id first)."""
        for name, columns in self.nested_columns:
            if name == nested_column:
                return ("rowID",) + columns
        raise PivotModelError(
            f"nested relation {self.name!r} has no nested column {nested_column!r}"
        )


class NestedEncoding(DataModelEncoding):
    """Pivot encoding of a set of nested relations."""

    model_name = "nested"

    def __init__(self, schemas: Iterable[NestedRelationSchema]) -> None:
        self._schemas: dict[str, NestedRelationSchema] = {}
        for schema in schemas:
            if schema.name in self._schemas:
                raise PivotModelError(f"duplicate nested relation {schema.name!r}")
            self._schemas[schema.name] = schema

    @property
    def schemas(self) -> Mapping[str, NestedRelationSchema]:
        """The registered nested relation schemas."""
        return dict(self._schemas)

    def signatures(self) -> Sequence[RelationSignature]:
        signatures: list[RelationSignature] = []
        for schema in self._schemas.values():
            signatures.append(
                RelationSignature(schema.top_level_relation(), schema.top_level_columns())
            )
            for nested_column, _ in schema.nested_columns:
                signatures.append(
                    RelationSignature(
                        schema.nested_relation(nested_column),
                        schema.inner_columns(nested_column),
                    )
                )
        return signatures

    def constraints(self) -> ConstraintSet:
        constraints = ConstraintSet()
        for schema in self._schemas.values():
            top_arity = len(schema.top_level_columns())
            if top_arity > 1:
                constraints.add(
                    key_constraint(
                        schema.top_level_relation(), top_arity, [0],
                        name=f"nested_rowid_{schema.name}",
                    )
                )
            if schema.key:
                positions = [schema.top_level_columns().index(c) for c in schema.key]
                if len(positions) < top_arity:
                    constraints.add(
                        key_constraint(
                            schema.top_level_relation(), top_arity, positions,
                            name=f"nested_key_{schema.name}",
                        )
                    )
            for nested_column, _ in schema.nested_columns:
                inner = schema.nested_relation(nested_column)
                inner_arity = len(schema.inner_columns(nested_column))
                constraints.add(
                    inclusion_dependency(
                        inner, inner_arity, [0],
                        schema.top_level_relation(), top_arity, [0],
                        name=f"nested_parent_{inner}",
                    )
                )
        return constraints

    def encode(
        self, data: Mapping[str, Sequence[Mapping[str, object]]], **options: object
    ) -> list[Atom]:
        """Encode ``{relation: [record, ...]}`` into pivot facts.

        Each record maps atomic columns to values and nested columns to lists
        of inner records.
        """
        facts: list[Atom] = []
        for relation_name, records in data.items():
            schema = self._schemas.get(relation_name)
            if schema is None:
                raise PivotModelError(f"unknown nested relation {relation_name!r}")
            for index, record in enumerate(records):
                facts.extend(self.encode_record(schema, record, row_id=f"{relation_name}#{index}"))
        return facts

    def encode_record(
        self, schema: NestedRelationSchema, record: Mapping[str, object], row_id: str
    ) -> list[Atom]:
        """Encode one nested record into pivot facts."""
        missing = [c for c in schema.atomic_columns if c not in record]
        if missing:
            raise SchemaError(
                f"record for {schema.name!r} missing atomic columns {missing}"
            )
        facts = [
            Atom(
                schema.top_level_relation(),
                [row_id] + [record[c] for c in schema.atomic_columns],
            )
        ]
        for nested_column, inner_columns in schema.nested_columns:
            inner_records = record.get(nested_column, [])
            if not isinstance(inner_records, (list, tuple)):
                raise SchemaError(
                    f"nested column {nested_column!r} of {schema.name!r} must be a list"
                )
            for inner in inner_records:
                inner_missing = [c for c in inner_columns if c not in inner]
                if inner_missing:
                    raise SchemaError(
                        f"inner record of {schema.name}.{nested_column} missing {inner_missing}"
                    )
                facts.append(
                    Atom(
                        schema.nested_relation(nested_column),
                        [row_id] + [inner[c] for c in inner_columns],
                    )
                )
        return facts
