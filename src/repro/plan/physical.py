"""The physical planning pass: logical IR → runtime operator tree.

Lowering decides *how* each logical step executes:

* each delegation group is compiled into the store-request micro-IR — scans
  with pushed-down equality predicates, key lookups when constants pin the
  whole key, or delegated joins for join-capable stores;
* each logical join becomes a :class:`~repro.runtime.operators.BindJoin` when
  the right group's access pattern requires left-produced values, and
  otherwise a hash join *or* a bind join — with a cost model, the cheaper of
  the two is picked from the estimated left cardinality and the store's cost
  profile (per-probe lookups beat a full scan when the left side is small);
* projection and duplicate elimination map onto the streaming
  :class:`~repro.runtime.operators.Project` / ``Deduplicate`` operators; on
  the compiled path (``REPRO_COMPILED``, default on) the facade's residual
  assembly lowers the terminal Filter → Project → Output (→ LIMIT) chain
  into kernel stages fused into a single
  :class:`~repro.runtime.kernels.FusedPipeline`
  (:func:`~repro.runtime.kernels.attach_stage`), and
  :func:`push_partial_aggregation` pattern-matches the fused projection
  shape exactly like the interpreted one;
* every delegated store request — the independent subtrees of the plan:
  distinct delegation groups, the build and probe sides of hash joins — is
  wrapped in an :class:`~repro.runtime.parallel.Exchange` node, the explicit
  marker the engine uses to overlap store requests when executing with
  ``parallelism > 1`` (with ``parallelism == 1`` an Exchange is a pure
  pass-through, so the serial plan semantics are unchanged);
* a scan of a fragment in a **sharded store** lowers to one delegated request
  *per target shard* (each against the shard's child store, each wrapped in
  its own Exchange) united by a
  :class:`~repro.runtime.operators.ShardGather` — a pruned point access
  contacts a single shard, an unpruned scan scatter-gathers across all of
  them; :func:`push_partial_aggregation` additionally rewrites
  ``Aggregate ∘ (Project ∘) ShardGather`` into per-shard
  :class:`~repro.runtime.operators.PartialAggregate` branches merged by a
  :class:`~repro.runtime.operators.MergeAggregate`, so each shard reduces its
  own rows before anything crosses the exchange queues;
* a fragment in a **replicated store** compiles against the replica *router*
  rather than a pinned replica: plans are cached and re-executed, so binding
  a replica index at plan time would replay a cached plan against a replica
  that has since slowed down or died.  Replica selection is split between
  planning and execution: at planning time the cost model prices the access
  (and the hash-vs-bind choice) with the cheapest healthy replica's EWMA
  latency (:meth:`~repro.cost.cost_model.CostModel.request_latency_seconds`),
  and at execution time the router resolves the same health board into the
  actual attempt order, with bounded retry, failover and hedging
  (:mod:`repro.stores.replicated`).  The lowered operator is annotated with
  the replica count so ``explain()`` shows where dynamic routing happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.query import ConjunctiveQuery
from repro.errors import CatalogError, CostModelError, PlanningError, StoreError
from repro.plan.logical import (
    LogicalAccess,
    LogicalDistinct,
    LogicalJoin,
    LogicalNode,
    LogicalPlan,
    LogicalProject,
)
from repro.runtime.kernels import FusedPipeline, ProjectStage
from repro.runtime.operators import (
    BindJoin,
    Deduplicate,
    DelegatedRequest,
    HashJoin,
    MergeAggregate,
    Operator,
    PartialAggregate,
    Project,
    ShardGather,
)
from repro.runtime.parallel import Exchange
from repro.runtime.values import Binding
from repro.stores.base import JoinRequest, LookupRequest, Predicate, ScanRequest, StoreRequest
from repro.stores.replicated import ReplicatedStore
from repro.stores.sharded import ShardedStore
from repro.translation.grouping import AtomAccess, DelegationGroup

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Mapping

    from repro.cost.cost_model import CostModel

__all__ = ["PhysicalPlan", "PhysicalPlanner", "push_partial_aggregation"]


@dataclass(slots=True)
class PhysicalPlan:
    """A physical plan: the operator tree plus planning metadata."""

    rewriting: ConjunctiveQuery
    root: Operator
    groups: list[DelegationGroup]
    head_variables: tuple[str, ...]
    logical: LogicalPlan | None = None

    def explain(self) -> str:
        """Printable plan (operator tree)."""
        return self.root.explain()


class PhysicalPlanner:
    """Lowers logical plans to operator trees, choosing join algorithms.

    Without a cost model the lowering is purely structural (hash joins unless
    an access pattern forces a bind join) — the seed planner's behavior.  With
    one, single-atom scannable groups may instead be probed per left row when
    the estimated probe cost undercuts the scan.
    """

    def __init__(self, cost_model: "CostModel | None" = None) -> None:
        self._cost_model = cost_model

    # -- lowering -----------------------------------------------------------------
    def lower(self, logical: LogicalPlan) -> PhysicalPlan:
        """Lower ``logical`` to a physical plan."""
        accesses_so_far: list[AtomAccess] = []
        root = self._lower_node(logical.root, accesses_so_far)
        return PhysicalPlan(
            rewriting=logical.rewriting,
            root=root,
            groups=logical.groups,
            head_variables=logical.head_variables,
            logical=logical,
        )

    def _lower_node(self, node: LogicalNode, accesses_so_far: list[AtomAccess]) -> Operator:
        if isinstance(node, LogicalAccess):
            operator = self._delegated_operator(
                node.group, shard_targets=node.shard_targets, shard_total=node.shard_total
            )
            accesses_so_far.extend(node.group.accesses)
            return operator
        if isinstance(node, LogicalJoin):
            left = self._lower_node(node.left, accesses_so_far)
            operator = self._lower_join(left, node, accesses_so_far)
            accesses_so_far.extend(node.right.group.accesses)
            return operator
        if isinstance(node, LogicalProject):
            return Project(self._lower_node(node.child, accesses_so_far), node.variables)
        if isinstance(node, LogicalDistinct):
            return Deduplicate(self._lower_node(node.child, accesses_so_far))
        raise PlanningError(f"cannot lower logical node {type(node).__name__}")

    def _lower_join(
        self, left: Operator, node: LogicalJoin, accesses_so_far: list[AtomAccess]
    ) -> Operator:
        group = node.right.group
        if node.requires_binding:
            return self._bind_join(left, group)
        algorithm = node.algorithm or self._choose_algorithm(group, accesses_so_far)
        if algorithm == "bind":
            probe_columns = self._bound_probe_columns(group.accesses[0], accesses_so_far)
            return self._bind_join(left, group, probe_columns=probe_columns)
        return HashJoin(
            left,
            self._delegated_operator(
                group,
                shard_targets=node.right.shard_targets,
                shard_total=node.right.shard_total,
            ),
        )

    # -- join algorithm choice ---------------------------------------------------------
    @staticmethod
    def _bound_probe_columns(
        access: AtomAccess, accesses_so_far: list[AtomAccess]
    ) -> tuple[str, ...]:
        """Columns of ``access`` whose variable the left side already produces."""
        produced = set()
        for earlier in accesses_so_far:
            produced.update(earlier.atom.variable_set())
        return tuple(
            column
            for column, variable in access.variable_by_column().items()
            if variable in produced
        )

    def _choose_algorithm(
        self, group: DelegationGroup, accesses_so_far: list[AtomAccess]
    ) -> str:
        """'hash' or 'bind' for a group that does not *require* binding."""
        if self._cost_model is None or not group.is_single():
            return "hash"
        access = group.accesses[0]
        if access.descriptor.access.kind == "lookup":
            # Constants already pin the key: the delegated lookup is a point
            # access, nothing to gain from per-row probing.
            return "hash"
        if not access.store.capabilities().supports_selection:
            return "hash"
        probe_columns = self._bound_probe_columns(access, accesses_so_far)
        if not probe_columns:
            return "hash"
        try:
            left_rows = self._cost_model.estimator.estimate_rows(accesses_so_far)
            return self._cost_model.join_algorithm(
                access, left_rows, probe_columns=probe_columns
            )
        except (CatalogError, StoreError, CostModelError):
            # Missing statistics (e.g. unmaterialized fragment) fall back to
            # the structural default rather than failing the plan.
            return "hash"

    # -- delegated requests --------------------------------------------------------------
    def _delegated_operator(
        self,
        group: DelegationGroup,
        shard_targets: tuple[int, ...] | None = None,
        shard_total: int = 0,
    ) -> Operator:
        """One delegation group as an Exchange-wrapped store request subtree.

        Each delegated request is an independent leaf of the plan — exactly
        the unit the scatter-gather runtime overlaps — so every one is marked
        with an :class:`Exchange` here.  A scan of a sharded fragment becomes
        one request per target shard under a :class:`ShardGather`.  Requests
        against a replicated store target the router (replica selection is
        resolved per execution from the live health board, never baked into
        the cached plan) and carry a ``×Nr`` annotation in the plan text.
        """
        if group.is_single():
            access = group.accesses[0]
            request, output, residual = self._scan_request(access)
            if shard_targets is not None and isinstance(request, ScanRequest):
                return self._sharded_scan(
                    access, request, output, residual, shard_targets, shard_total
                )
            operator = DelegatedRequest(
                store=group.store,
                request=request,
                output=output,
                constants=residual,
                label=access.descriptor.layout.collection,
                fragment=access.descriptor.fragment_name,
            )
            return Exchange(operator, label=self._exchange_label(group.store, access))
        try:
            request, output, residual = self._join_request(group)
        except PlanningError:
            # The store-side join would clobber a column (two collections expose
            # the same column name bound to different variables): fall back to
            # per-fragment delegation joined at the mediator.
            root: Operator | None = None
            for access in group.accesses:
                request, output, residual = self._scan_request(access)
                operator = Exchange(
                    DelegatedRequest(
                        store=group.store,
                        request=request,
                        output=output,
                        constants=residual,
                        label=access.descriptor.layout.collection,
                        fragment=access.descriptor.fragment_name,
                    ),
                    label=access.descriptor.fragment_name,
                )
                root = operator if root is None else HashJoin(root, operator)
            return root
        label = "+".join(a.descriptor.layout.collection for a in group.accesses)
        return Exchange(
            DelegatedRequest(
                store=group.store,
                request=request,
                output=output,
                constants=residual,
                label=label,
            ),
            label=label,
        )

    @staticmethod
    def _exchange_label(store, access: AtomAccess) -> str:
        """Exchange display label; replicated stores advertise their fan size."""
        label = access.descriptor.fragment_name
        if isinstance(store, ReplicatedStore):
            return f"{label}×{store.replica_count}r"
        return label

    def _sharded_scan(
        self,
        access: AtomAccess,
        request: ScanRequest,
        output: dict[str, str],
        residual: dict[str, object],
        shard_targets: tuple[int, ...],
        shard_total: int,
    ) -> Operator:
        """Scatter a sharded fragment scan: one delegated request per shard.

        Each per-shard request targets the shard's *child* store directly and
        is wrapped in its own Exchange, so the scatter-gather executor
        overlaps the shard round-trips; the :class:`ShardGather` above them
        unions the disjoint shard streams and accounts contacted vs pruned
        shards.  A pruned access (one target) keeps the same shape — a
        single-branch gather — so plan rendering and metrics stay uniform.
        """
        store = access.store
        if not isinstance(store, ShardedStore):
            raise PlanningError(
                f"fragment {access.descriptor.fragment_name!r} has shard targets but "
                f"store {store.name!r} is not sharded"
            )
        fragment = access.descriptor.fragment_name
        collection = access.descriptor.layout.collection
        branches: list[Operator] = []
        for index in shard_targets:
            operator = DelegatedRequest(
                store=store.shard(index),
                request=request,
                output=output,
                constants=residual,
                label=f"{collection}#{index}",
                fragment=fragment,
                shard=index,
            )
            branches.append(Exchange(operator, label=f"{fragment}#{index}"))
        return ShardGather(branches, fragment=fragment, shards_total=shard_total)

    def _scan_request(
        self, access: AtomAccess
    ) -> tuple[StoreRequest, dict[str, str], dict[str, object]]:
        """Compile one atom into a scan/lookup request plus its output mapping."""
        layout = access.descriptor.layout
        capabilities = access.store.capabilities()

        # A lookup fragment whose key columns are all pinned by constants is a
        # point access: emit a LookupRequest (key-value stores reject scans).
        key_columns = access.descriptor.access.key_columns
        constants_by_column = access.constant_by_column()
        if (
            access.descriptor.access.kind == "lookup"
            and key_columns
            and all(column in constants_by_column for column in key_columns)
        ):
            output = {
                layout.store_column(column): variable.name
                for column, variable in access.variable_by_column().items()
            }
            residual = {
                layout.store_column(column): value
                for column, value in constants_by_column.items()
                if column not in key_columns
            }
            request: StoreRequest = LookupRequest(
                collection=layout.collection,
                keys=tuple(constants_by_column[column] for column in key_columns[:1]),
            )
            return request, output, residual

        predicates: list[Predicate] = []
        residual: dict[str, object] = {}
        for column, value in access.constant_by_column().items():
            store_column = layout.store_column(column)
            if capabilities.supports_selection or column in access.input_columns():
                predicates.append(Predicate(store_column, "=", value))
            else:
                residual[store_column] = value
        output = {
            layout.store_column(column): variable.name
            for column, variable in access.variable_by_column().items()
        }
        request = ScanRequest(
            collection=layout.collection,
            predicates=tuple(predicates),
            projection=None,
        )
        return request, output, residual

    def _join_request(
        self, group: DelegationGroup
    ) -> tuple[StoreRequest, dict[str, str], dict[str, object]]:
        """Compile a multi-atom group into one delegated join request."""
        requests: list[StoreRequest] = []
        outputs: list[dict[str, str]] = []
        residuals: dict[str, object] = {}
        for access in group.accesses:
            request, output, residual = self._scan_request(access)
            requests.append(request)
            outputs.append(output)
            residuals.update(residual)

        # Column-name collisions across collections (other than the join
        # columns) would be clobbered by the store-side merge; fall back to a
        # mediator join in that case by raising, the caller catches this.
        merged_output: dict[str, str] = {}
        for output in outputs:
            for store_column, variable in output.items():
                existing = merged_output.get(store_column)
                if existing is not None and existing != variable:
                    raise PlanningError(
                        "store-side join would clobber column "
                        f"{store_column!r}; delegation not possible"
                    )
                merged_output[store_column] = variable

        joined = requests[0]
        joined_output = dict(outputs[0])
        for request, output in zip(requests[1:], outputs[1:]):
            variable_to_column_left = {v: c for c, v in joined_output.items()}
            on: list[tuple[str, str]] = []
            for store_column, variable in output.items():
                left_column = variable_to_column_left.get(variable)
                if left_column is not None:
                    on.append((left_column, store_column))
            if not on:
                raise PlanningError("delegated join has no shared variables")
            joined = JoinRequest(left=joined, right=request, on=tuple(on))
            joined_output.update(output)
        return joined, merged_output, residuals

    # -- bind joins ----------------------------------------------------------------------
    def _bind_join(
        self,
        left: Operator,
        group: DelegationGroup,
        probe_columns: tuple[str, ...] | None = None,
    ) -> Operator:
        """Probe a group once per left binding.

        ``probe_columns`` are the columns fed from the left side; by default
        the fragment's access-pattern input columns (the access-restricted
        case), or — for a cost-chosen bind join over a scannable fragment —
        the columns whose variables the left side produces.
        """
        if not group.is_single():
            raise PlanningError("bind joins are built one access-restricted atom at a time")
        access = group.accesses[0]
        layout = access.descriptor.layout
        input_columns = (
            tuple(probe_columns) if probe_columns is not None else access.input_columns()
        )
        lookup_key_columns = access.descriptor.access.key_columns or input_columns[:1]

        # Columns whose value comes from the left side (variables already bound)
        # and columns fixed by constants in the atom.
        constants = access.constant_by_column()
        variables = access.variable_by_column()

        def request_factory(binding: Binding) -> StoreRequest | None:
            key_values: list[object] = []
            predicates: list[Predicate] = []
            for column in input_columns:
                if column in constants:
                    value = constants[column]
                else:
                    variable = variables.get(column)
                    if variable is None or variable.name not in binding:
                        return None
                    value = binding[variable.name]
                if column in lookup_key_columns and access.descriptor.access.kind == "lookup":
                    key_values.append(value)
                else:
                    predicates.append(Predicate(layout.store_column(column), "=", value))
            if access.descriptor.access.kind == "lookup":
                if not key_values:
                    return None
                return LookupRequest(
                    collection=layout.collection,
                    keys=tuple(key_values),
                )
            # Non-lookup probe: a scan restricted by the bound columns plus the
            # atom's own constants.
            for column, value in constants.items():
                store_column = layout.store_column(column)
                if all(store_column != p.column for p in predicates):
                    predicates.append(Predicate(store_column, "=", value))
            return ScanRequest(collection=layout.collection, predicates=tuple(predicates))

        output = {
            layout.store_column(column): variable.name
            for column, variable in variables.items()
        }
        # Constants are re-checked on the probe results: lookup requests cannot
        # carry extra predicates, and double-checking scans is harmless.
        residual = {
            layout.store_column(column): value for column, value in constants.items()
        }
        return BindJoin(
            left=left,
            store=group.store,
            request_factory=request_factory,
            output=output,
            constants=residual,
            label=layout.collection,
        )


# -- partial aggregation pushdown ------------------------------------------------------
def push_partial_aggregation(
    root: Operator,
    group_by: Sequence[str],
    aggregations: "Mapping[str, tuple[str, str | None]]",
) -> Operator | None:
    """Rewrite ``Aggregate(root)`` into per-shard partials when ``root`` allows.

    Applies when the plan is a (possibly projected) single sharded fragment
    access — ``Project(ShardGather(...))`` or a bare ``ShardGather`` — and
    every aggregation function decomposes (count/sum/min/max/avg).  Each
    gather branch is rebuilt as ``Exchange(PartialAggregate(shard scan))`` so
    the blocking per-shard reduction runs on the Exchange worker that owns
    the shard, and a :class:`MergeAggregate` above the gather combines the
    partial states.  Returns ``None`` when the shape does not match; the
    caller then falls back to a plain mediator-side ``Aggregate``.
    """
    node = root
    projected: set[str] | None = None
    if isinstance(node, Project):
        projected = set(node.variables)
        node = node.children()[0]
    elif isinstance(node, FusedPipeline) and node.limit is None:
        # The compiled lowering turns the terminal Project into a fused
        # ProjectStage chain; the pushdown sees through it the same way
        # (rename-free stages only — a renamed column would decouple the
        # stage's outputs from the aggregation's input names).
        stages = node.stages
        if (
            stages
            and all(
                isinstance(stage, ProjectStage) and not stage.renaming
                for stage in stages
            )
        ):
            projected = set(stages[-1].variables)
            node = node.child
    if not isinstance(node, ShardGather):
        return None
    needed = set(group_by) | {
        column for _, column in aggregations.values() if column is not None
    }
    if projected is not None and not needed <= projected:
        return None
    if any(function not in {"count", "sum", "min", "max", "avg"} for function, _ in aggregations.values()):
        return None
    branches: list[Operator] = []
    for branch in node.branches:
        inner = branch.children()[0] if isinstance(branch, Exchange) else branch
        label = getattr(branch, "label", "")
        branches.append(
            Exchange(PartialAggregate(inner, group_by, aggregations), label=label)
        )
    gathered = ShardGather(
        branches, fragment=node.fragment, shards_total=node.shards_total
    )
    return MergeAggregate(gathered, group_by, aggregations)
