"""The shared plan IR: logical plans emitted by translation, lowered physically.

The rewriting translation step emits a **logical plan** (:mod:`repro.plan.logical`)
describing *what* the mediator must compute: the delegation groups, the join
structure between them, the final projection and duplicate elimination.  The
**physical planning pass** (:mod:`repro.plan.physical`) lowers that IR to the
runtime's operator tree, deciding *how* each step runs — delegated scan vs.
key lookup vs. store-side join, and hash join vs. bind join per group, the
latter chosen by the cost model when one is available.
"""

from repro.plan.logical import (
    LogicalAccess,
    LogicalDistinct,
    LogicalJoin,
    LogicalNode,
    LogicalPlan,
    LogicalProject,
    build_logical_plan,
    shard_selection,
)
from repro.plan.physical import PhysicalPlan, PhysicalPlanner, push_partial_aggregation

__all__ = [
    "LogicalNode",
    "LogicalAccess",
    "LogicalJoin",
    "LogicalProject",
    "LogicalDistinct",
    "LogicalPlan",
    "build_logical_plan",
    "shard_selection",
    "PhysicalPlan",
    "PhysicalPlanner",
    "push_partial_aggregation",
]
