"""The logical plan IR.

A logical plan is the translation layer's output: rewriting atoms resolved
against the catalog, ordered for access-pattern feasibility, grouped into
maximal per-store delegation units, and arranged as a left-deep join chain
with a final projection (and optional duplicate elimination).  It says
nothing about join algorithms or store-request compilation — that is the
physical pass's job (:mod:`repro.plan.physical`), which keeps the cost
model's choices out of the structural translation step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.catalog.manager import StorageDescriptorManager
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Variable
from repro.errors import PlanningError
from repro.translation.grouping import (
    DelegationGroup,
    group_for_delegation,
    order_atoms,
)

__all__ = [
    "LogicalNode",
    "LogicalAccess",
    "LogicalJoin",
    "LogicalProject",
    "LogicalDistinct",
    "LogicalPlan",
    "build_logical_plan",
]


class LogicalNode:
    """Base class of logical plan nodes."""

    def children(self) -> Sequence["LogicalNode"]:
        return ()

    def describe(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """Printable logical sub-plan."""
        line = "  " * indent + self.describe()
        for child in self.children():
            line += "\n" + child.explain(indent + 1)
        return line


@dataclass(slots=True)
class LogicalAccess(LogicalNode):
    """One delegation group: the largest sub-query one store can evaluate."""

    group: DelegationGroup

    def describe(self) -> str:
        fragments = "+".join(
            access.descriptor.fragment_name for access in self.group.accesses
        )
        return f"Access[store={self.group.store.name}, {fragments}]"


@dataclass(slots=True)
class LogicalJoin(LogicalNode):
    """Join the plan so far with one more delegation group.

    ``requires_binding`` is True when the right group's access pattern needs
    values produced by the left side (the join *must* be a bind join);
    ``algorithm`` pins the implementation ('hash' or 'bind'), or is None to
    let the physical pass choose.
    """

    left: LogicalNode
    right: LogicalAccess
    requires_binding: bool = False
    algorithm: str | None = None

    def children(self) -> Sequence[LogicalNode]:
        return (self.left, self.right)

    def describe(self) -> str:
        how = self.algorithm or ("bind" if self.requires_binding else "any")
        return f"Join[{how}]"


@dataclass(slots=True)
class LogicalProject(LogicalNode):
    """Project the head variables of the rewriting."""

    child: LogicalNode
    variables: tuple[str, ...]

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project[{', '.join(self.variables)}]"


@dataclass(slots=True)
class LogicalDistinct(LogicalNode):
    """Set semantics: eliminate duplicate result rows."""

    child: LogicalNode

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)


@dataclass(slots=True)
class LogicalPlan:
    """The logical plan of one rewriting, plus its planning metadata."""

    rewriting: ConjunctiveQuery
    root: LogicalNode
    groups: list[DelegationGroup]
    head_variables: tuple[str, ...]
    bound_parameters: tuple[Variable, ...] = ()

    def explain(self) -> str:
        """Printable logical plan."""
        return self.root.explain()


def build_logical_plan(
    rewriting: ConjunctiveQuery,
    manager: StorageDescriptorManager,
    bound_parameters: Sequence[Variable] = (),
    distinct: bool = False,
) -> LogicalPlan:
    """Translate a rewriting into the logical IR.

    Atoms are ordered so every access pattern is satisfiable, grouped into
    per-store delegation units, and chained into a left-deep join tree.
    """
    bound = tuple(bound_parameters)
    ordered = order_atoms(rewriting, manager, bound_parameters=bound)
    groups = group_for_delegation(ordered)
    if not groups:
        raise PlanningError(f"rewriting {rewriting.name!r} produced no delegation groups")

    parameters: set[Variable] = set(bound)
    root: LogicalNode | None = None
    for group in groups:
        needs_binding = any(
            access.requires_binding(parameters) for access in group.accesses
        )
        access_node = LogicalAccess(group)
        if root is None:
            if needs_binding:
                raise PlanningError(
                    f"first delegation group of {rewriting.name!r} needs runtime bindings; "
                    "the atom order should have prevented this"
                )
            root = access_node
        else:
            root = LogicalJoin(left=root, right=access_node, requires_binding=needs_binding)

    head_variables = tuple(
        term.name for term in rewriting.head_terms if isinstance(term, Variable)
    )
    root = LogicalProject(root, head_variables)
    if distinct:
        root = LogicalDistinct(root)
    return LogicalPlan(
        rewriting=rewriting,
        root=root,
        groups=groups,
        head_variables=head_variables,
        bound_parameters=bound,
    )
