"""The logical plan IR.

A logical plan is the translation layer's output: rewriting atoms resolved
against the catalog, ordered for access-pattern feasibility, grouped into
maximal per-store delegation units, and arranged as a left-deep join chain
with a final projection (and optional duplicate elimination).  It says
nothing about join algorithms or store-request compilation — that is the
physical pass's job (:mod:`repro.plan.physical`), which keeps the cost
model's choices out of the structural translation step.

Accesses to fragments materialized in a **sharded store** additionally carry
the shard selection: when an equality constant in the atom binds the
fragment's shard key, routing is computed here (via the descriptor's
:class:`~repro.stores.sharding.ShardingSpec`) and the access is *pruned* to
the single shard that can hold matching rows; otherwise every shard is a
target and the physical pass fans the scan out shard-by-shard.  Constants
are part of the plan-cache key, so a cached pruned plan can never be replayed
against a different shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.catalog.manager import StorageDescriptorManager
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Variable
from repro.errors import PlanningError
from repro.stores.sharded import ShardedStore
from repro.translation.grouping import (
    AtomAccess,
    DelegationGroup,
    group_for_delegation,
    order_atoms,
)

__all__ = [
    "LogicalNode",
    "LogicalAccess",
    "LogicalJoin",
    "LogicalProject",
    "LogicalDistinct",
    "LogicalPlan",
    "build_logical_plan",
    "shard_selection",
]


class LogicalNode:
    """Base class of logical plan nodes."""

    def children(self) -> Sequence["LogicalNode"]:
        return ()

    def describe(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """Printable logical sub-plan."""
        line = "  " * indent + self.describe()
        for child in self.children():
            line += "\n" + child.explain(indent + 1)
        return line


@dataclass(slots=True)
class LogicalAccess(LogicalNode):
    """One delegation group: the largest sub-query one store can evaluate.

    ``shard_targets`` is ``None`` for unsharded fragments; for fragments in a
    sharded store it lists the shards that can hold matching rows (all of
    them for an unpruned scan, exactly one when a constant binds the shard
    key), and ``shard_total`` is the store's shard count.
    """

    group: DelegationGroup
    shard_targets: tuple[int, ...] | None = None
    shard_total: int = 0

    def describe(self) -> str:
        fragments = "+".join(
            access.descriptor.fragment_name for access in self.group.accesses
        )
        sharding = ""
        if self.shard_targets is not None:
            sharding = f", shards={len(self.shard_targets)}/{self.shard_total}"
        return f"Access[store={self.group.store.name}, {fragments}{sharding}]"


@dataclass(slots=True)
class LogicalJoin(LogicalNode):
    """Join the plan so far with one more delegation group.

    ``requires_binding`` is True when the right group's access pattern needs
    values produced by the left side (the join *must* be a bind join);
    ``algorithm`` pins the implementation ('hash' or 'bind'), or is None to
    let the physical pass choose.
    """

    left: LogicalNode
    right: LogicalAccess
    requires_binding: bool = False
    algorithm: str | None = None

    def children(self) -> Sequence[LogicalNode]:
        return (self.left, self.right)

    def describe(self) -> str:
        how = self.algorithm or ("bind" if self.requires_binding else "any")
        return f"Join[{how}]"


@dataclass(slots=True)
class LogicalProject(LogicalNode):
    """Project the head variables of the rewriting."""

    child: LogicalNode
    variables: tuple[str, ...]

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def describe(self) -> str:
        return f"Project[{', '.join(self.variables)}]"


@dataclass(slots=True)
class LogicalDistinct(LogicalNode):
    """Set semantics: eliminate duplicate result rows."""

    child: LogicalNode

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)


@dataclass(slots=True)
class LogicalPlan:
    """The logical plan of one rewriting, plus its planning metadata."""

    rewriting: ConjunctiveQuery
    root: LogicalNode
    groups: list[DelegationGroup]
    head_variables: tuple[str, ...]
    bound_parameters: tuple[Variable, ...] = ()

    def explain(self) -> str:
        """Printable logical plan."""
        return self.root.explain()


def shard_selection(access: AtomAccess) -> tuple[tuple[int, ...], int] | None:
    """The shard targets of one atom access, or ``None`` when not sharded.

    Pruning uses the equality constants of the atom: a constant on the shard
    key routes to exactly one shard (under either strategy); without one,
    every shard is a target.  Range predicates on the shard key live outside
    the conjunctive pivot query (they are residual, mediator-side work) so
    range pruning happens inside the sharded store when a compiled request
    carries such a predicate — never here.
    """
    spec = access.descriptor.sharding
    if spec is None or not isinstance(access.store, ShardedStore):
        return None
    if spec.shards != access.store.shard_count:
        raise PlanningError(
            f"fragment {access.descriptor.fragment_name!r} declares {spec.shards} shards "
            f"but store {access.store.name!r} has {access.store.shard_count}"
        )
    constants = access.constant_by_column()
    if spec.shard_key in constants:
        targets = spec.shards_for_predicates([("=", constants[spec.shard_key])])
    else:
        targets = spec.all_shards()
    return targets, spec.shards


def _access_node(group: DelegationGroup) -> LogicalAccess:
    """A LogicalAccess for ``group``, with shard targets when applicable."""
    if group.is_single():
        selection = shard_selection(group.accesses[0])
        if selection is not None:
            targets, total = selection
            return LogicalAccess(group, shard_targets=targets, shard_total=total)
    return LogicalAccess(group)


def build_logical_plan(
    rewriting: ConjunctiveQuery,
    manager: StorageDescriptorManager,
    bound_parameters: Sequence[Variable] = (),
    distinct: bool = False,
) -> LogicalPlan:
    """Translate a rewriting into the logical IR.

    Atoms are ordered so every access pattern is satisfiable, grouped into
    per-store delegation units, and chained into a left-deep join tree.
    """
    bound = tuple(bound_parameters)
    ordered = order_atoms(rewriting, manager, bound_parameters=bound)
    groups = group_for_delegation(ordered)
    if not groups:
        raise PlanningError(f"rewriting {rewriting.name!r} produced no delegation groups")

    parameters: set[Variable] = set(bound)
    root: LogicalNode | None = None
    for group in groups:
        needs_binding = any(
            access.requires_binding(parameters) for access in group.accesses
        )
        access_node = _access_node(group)
        if root is None:
            if needs_binding:
                raise PlanningError(
                    f"first delegation group of {rewriting.name!r} needs runtime bindings; "
                    "the atom order should have prevented this"
                )
            root = access_node
        else:
            root = LogicalJoin(left=root, right=access_node, requires_binding=needs_binding)

    head_variables = tuple(
        term.name for term in rewriting.head_terms if isinstance(term, Variable)
    )
    root = LogicalProject(root, head_variables)
    if distinct:
        root = LogicalDistinct(root)
    return LogicalPlan(
        rewriting=rewriting,
        root=root,
        groups=groups,
        head_variables=head_variables,
        bound_parameters=bound,
    )
