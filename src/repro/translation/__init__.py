"""Rewriting translation: grouping, delegation and physical planning."""

from repro.translation.grouping import (
    AtomAccess,
    DelegationGroup,
    group_for_delegation,
    order_atoms,
    resolve_atoms,
)

__all__ = [
    "AtomAccess",
    "DelegationGroup",
    "resolve_atoms",
    "order_atoms",
    "group_for_delegation",
    "Planner",
    "PhysicalPlan",
]


def __getattr__(name: str):
    # Lazy import: the planner pulls in the plan IR package, whose logical
    # builder imports repro.translation.grouping — importing it eagerly here
    # would close an import cycle during package initialization.
    if name in ("Planner", "PhysicalPlan"):
        from repro.translation import planner

        return getattr(planner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
