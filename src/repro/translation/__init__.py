"""Rewriting translation: grouping, delegation and physical planning."""

from repro.translation.grouping import (
    AtomAccess,
    DelegationGroup,
    group_for_delegation,
    order_atoms,
    resolve_atoms,
)
from repro.translation.planner import PhysicalPlan, Planner

__all__ = [
    "AtomAccess",
    "DelegationGroup",
    "resolve_atoms",
    "order_atoms",
    "group_for_delegation",
    "Planner",
    "PhysicalPlan",
]
