"""The rewriting translation step: from a CQ over fragments to a physical plan.

Given a rewriting produced by the PACB engine (a conjunctive query whose
atoms are fragment relations), the planner:

1. resolves each atom against the catalog (fragment descriptor, store,
   column names) and orders the atoms so every access pattern is satisfied;
2. groups consecutive atoms that can be **delegated** together to the same
   join-capable store, and compiles each group into the store-request
   micro-IR (scans with pushed-down equality predicates, key lookups, or
   delegated joins);
3. stitches the delegated requests together with runtime operators —
   :class:`~repro.runtime.operators.BindJoin` when a group needs values
   produced earlier (access-restricted sources), hash joins otherwise — and
   finally projects the query head.

The planner is purely structural; choosing *among* alternative rewritings is
the cost model's job (:mod:`repro.cost`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.catalog.manager import StorageDescriptorManager
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable
from repro.errors import PlanningError
from repro.runtime.operators import (
    BindJoin,
    Deduplicate,
    DelegatedRequest,
    HashJoin,
    Operator,
    Project,
)
from repro.runtime.values import Binding
from repro.stores.base import JoinRequest, LookupRequest, Predicate, ScanRequest, StoreRequest
from repro.translation.grouping import (
    AtomAccess,
    DelegationGroup,
    group_for_delegation,
    order_atoms,
)

__all__ = ["PhysicalPlan", "Planner"]


@dataclass(slots=True)
class PhysicalPlan:
    """A physical plan: the operator tree plus planning metadata."""

    rewriting: ConjunctiveQuery
    root: Operator
    groups: list[DelegationGroup]
    head_variables: tuple[str, ...]

    def explain(self) -> str:
        """Printable plan (operator tree)."""
        return self.root.explain()


class Planner:
    """Builds physical plans for rewritings over the registered fragments."""

    def __init__(self, manager: StorageDescriptorManager, distinct: bool = True) -> None:
        self._manager = manager
        self._distinct = distinct

    # -- public API -----------------------------------------------------------------
    def plan(
        self,
        rewriting: ConjunctiveQuery,
        bound_parameters: Sequence[Variable] = (),
    ) -> PhysicalPlan:
        """Build the physical plan of ``rewriting``."""
        ordered = order_atoms(
            rewriting, self._manager, bound_parameters=tuple(bound_parameters)
        )
        groups = group_for_delegation(ordered)
        if not groups:
            raise PlanningError(f"rewriting {rewriting.name!r} produced no delegation groups")

        root: Operator | None = None
        parameters: set[Variable] = set(bound_parameters)
        for group in groups:
            needs_binding = any(
                access.requires_binding(parameters) for access in group.accesses
            )
            if root is None:
                if needs_binding:
                    raise PlanningError(
                        f"first delegation group of {rewriting.name!r} needs runtime bindings; "
                        "the atom order should have prevented this"
                    )
                root = self._delegated_operator(group)
            elif needs_binding:
                root = self._bind_join(root, group)
            else:
                root = HashJoin(root, self._delegated_operator(group))

        head_variables = tuple(
            term.name for term in rewriting.head_terms if isinstance(term, Variable)
        )
        projected: Operator = Project(root, head_variables)
        if self._distinct:
            projected = Deduplicate(projected)
        return PhysicalPlan(
            rewriting=rewriting,
            root=projected,
            groups=groups,
            head_variables=head_variables,
        )

    # -- delegated requests --------------------------------------------------------------
    def _delegated_operator(self, group: DelegationGroup) -> Operator:
        if group.is_single():
            access = group.accesses[0]
            request, output, residual = self._scan_request(access)
            return DelegatedRequest(
                store=group.store,
                request=request,
                output=output,
                constants=residual,
                label=access.descriptor.layout.collection,
            )
        try:
            request, output, residual = self._join_request(group)
        except PlanningError:
            # The store-side join would clobber a column (two collections expose
            # the same column name bound to different variables): fall back to
            # per-fragment delegation joined at the mediator.
            root: Operator | None = None
            for access in group.accesses:
                request, output, residual = self._scan_request(access)
                operator = DelegatedRequest(
                    store=group.store,
                    request=request,
                    output=output,
                    constants=residual,
                    label=access.descriptor.layout.collection,
                )
                root = operator if root is None else HashJoin(root, operator)
            return root
        return DelegatedRequest(
            store=group.store,
            request=request,
            output=output,
            constants=residual,
            label="+".join(a.descriptor.layout.collection for a in group.accesses),
        )

    def _scan_request(
        self, access: AtomAccess
    ) -> tuple[StoreRequest, dict[str, str], dict[str, object]]:
        """Compile one atom into a scan/lookup request plus its output mapping."""
        layout = access.descriptor.layout
        capabilities = access.store.capabilities()

        # A lookup fragment whose key columns are all pinned by constants is a
        # point access: emit a LookupRequest (key-value stores reject scans).
        key_columns = access.descriptor.access.key_columns
        constants_by_column = access.constant_by_column()
        if (
            access.descriptor.access.kind == "lookup"
            and key_columns
            and all(column in constants_by_column for column in key_columns)
        ):
            output = {
                layout.store_column(column): variable.name
                for column, variable in access.variable_by_column().items()
            }
            residual = {
                layout.store_column(column): value
                for column, value in constants_by_column.items()
                if column not in key_columns
            }
            request: StoreRequest = LookupRequest(
                collection=layout.collection,
                keys=tuple(constants_by_column[column] for column in key_columns[:1]),
            )
            return request, output, residual

        predicates: list[Predicate] = []
        residual: dict[str, object] = {}
        for column, value in access.constant_by_column().items():
            store_column = layout.store_column(column)
            if capabilities.supports_selection or column in access.input_columns():
                predicates.append(Predicate(store_column, "=", value))
            else:
                residual[store_column] = value
        output = {
            layout.store_column(column): variable.name
            for column, variable in access.variable_by_column().items()
        }
        request = ScanRequest(
            collection=layout.collection,
            predicates=tuple(predicates),
            projection=None,
        )
        return request, output, residual

    def _join_request(
        self, group: DelegationGroup
    ) -> tuple[StoreRequest, dict[str, str], dict[str, object]]:
        """Compile a multi-atom group into one delegated join request."""
        requests: list[StoreRequest] = []
        outputs: list[dict[str, str]] = []
        residuals: dict[str, object] = {}
        for access in group.accesses:
            request, output, residual = self._scan_request(access)
            requests.append(request)
            outputs.append(output)
            residuals.update(residual)

        # Column-name collisions across collections (other than the join
        # columns) would be clobbered by the store-side merge; fall back to a
        # mediator join in that case by raising, the caller catches this.
        merged_output: dict[str, str] = {}
        for output in outputs:
            for store_column, variable in output.items():
                existing = merged_output.get(store_column)
                if existing is not None and existing != variable:
                    raise PlanningError(
                        "store-side join would clobber column "
                        f"{store_column!r}; delegation not possible"
                    )
                merged_output[store_column] = variable

        joined = requests[0]
        joined_output = dict(outputs[0])
        for request, output in zip(requests[1:], outputs[1:]):
            variable_to_column_left = {v: c for c, v in joined_output.items()}
            on: list[tuple[str, str]] = []
            for store_column, variable in output.items():
                left_column = variable_to_column_left.get(variable)
                if left_column is not None:
                    on.append((left_column, store_column))
            if not on:
                raise PlanningError("delegated join has no shared variables")
            joined = JoinRequest(left=joined, right=request, on=tuple(on))
            joined_output.update(output)
        return joined, merged_output, residuals

    # -- bind joins ----------------------------------------------------------------------
    def _bind_join(self, left: Operator, group: DelegationGroup) -> Operator:
        """Probe an access-restricted group once per left binding."""
        if not group.is_single():
            raise PlanningError("bind joins are built one access-restricted atom at a time")
        access = group.accesses[0]
        layout = access.descriptor.layout
        input_columns = access.input_columns()
        lookup_key_columns = access.descriptor.access.key_columns or input_columns[:1]

        # Columns whose value comes from the left side (variables already bound)
        # and columns fixed by constants in the atom.
        constants = access.constant_by_column()
        variables = access.variable_by_column()

        def request_factory(binding: Binding) -> StoreRequest | None:
            key_values: list[object] = []
            predicates: list[Predicate] = []
            for column in input_columns:
                if column in constants:
                    value = constants[column]
                else:
                    variable = variables.get(column)
                    if variable is None or variable.name not in binding:
                        return None
                    value = binding[variable.name]
                if column in lookup_key_columns and access.descriptor.access.kind == "lookup":
                    key_values.append(value)
                else:
                    predicates.append(Predicate(layout.store_column(column), "=", value))
            if access.descriptor.access.kind == "lookup":
                if not key_values:
                    return None
                return LookupRequest(
                    collection=layout.collection,
                    keys=tuple(key_values),
                )
            # Non-lookup probe: a scan restricted by the bound columns plus the
            # atom's own constants.
            for column, value in constants.items():
                store_column = layout.store_column(column)
                if all(store_column != p.column for p in predicates):
                    predicates.append(Predicate(store_column, "=", value))
            return ScanRequest(collection=layout.collection, predicates=tuple(predicates))

        output = {
            layout.store_column(column): variable.name
            for column, variable in variables.items()
        }
        # Constants are re-checked on the probe results: lookup requests cannot
        # carry extra predicates, and double-checking scans is harmless.
        residual = {
            layout.store_column(column): value for column, value in constants.items()
        }
        return BindJoin(
            left=left,
            store=group.store,
            request_factory=request_factory,
            output=output,
            constants=residual,
            label=layout.collection,
        )
