"""The rewriting translation step: from a CQ over fragments to a physical plan.

Given a rewriting produced by the PACB engine (a conjunctive query whose
atoms are fragment relations), planning happens in two passes over the shared
plan IR (:mod:`repro.plan`):

1. the **logical pass** (:func:`repro.plan.logical.build_logical_plan`)
   resolves each atom against the catalog, orders the atoms so every access
   pattern is satisfied, and groups consecutive atoms that can be
   **delegated** together to the same join-capable store;
2. the **physical pass** (:class:`repro.plan.physical.PhysicalPlanner`)
   compiles each group into the store-request micro-IR and stitches the
   delegated requests together with runtime operators —
   :class:`~repro.runtime.operators.BindJoin` when a group needs values
   produced earlier (access-restricted sources), and otherwise hash join or
   bind join as the cost model prefers.

:class:`Planner` is the façade tying the two passes together.  Choosing
*among* alternative rewritings remains the chooser's job (:mod:`repro.cost`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.catalog.manager import StorageDescriptorManager
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Variable
from repro.plan.logical import LogicalPlan, build_logical_plan
from repro.plan.physical import PhysicalPlan, PhysicalPlanner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cost.cost_model import CostModel

__all__ = ["PhysicalPlan", "Planner"]


class Planner:
    """Builds physical plans for rewritings over the registered fragments.

    With a ``cost_model``, the physical pass picks the join algorithm (hash
    vs. bind join) per delegation group from estimated cardinalities; without
    one the lowering is purely structural, as in the seed planner.
    """

    def __init__(
        self,
        manager: StorageDescriptorManager,
        distinct: bool = True,
        cost_model: "CostModel | None" = None,
    ) -> None:
        self._manager = manager
        self._distinct = distinct
        self._cost_model = cost_model

    # -- public API -----------------------------------------------------------------
    def logical_plan(
        self,
        rewriting: ConjunctiveQuery,
        bound_parameters: Sequence[Variable] = (),
    ) -> LogicalPlan:
        """Translate ``rewriting`` into the logical plan IR."""
        return build_logical_plan(
            rewriting,
            self._manager,
            bound_parameters=tuple(bound_parameters),
            distinct=self._distinct,
        )

    def plan(
        self,
        rewriting: ConjunctiveQuery,
        bound_parameters: Sequence[Variable] = (),
    ) -> PhysicalPlan:
        """Build the physical plan of ``rewriting`` (logical pass + lowering)."""
        logical = self.logical_plan(rewriting, bound_parameters=bound_parameters)
        return PhysicalPlanner(cost_model=self._cost_model).lower(logical)
