"""Grouping rewriting atoms per fragment and per store.

The first step of "making rewritings executable" (paper, Section III): the
atoms of a relational rewriting are grouped so that (i) the atoms referring
to the same fragment are recognised, and (ii) atoms over fragments hosted by
the same join-capable store can be delegated together as one sub-query — "the
largest subquery that can be delegated to that DMS".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.catalog.descriptors import StorageDescriptor
from repro.catalog.manager import StorageDescriptorManager
from repro.core.binding_patterns import AccessPatternRegistry, feasible_order
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Atom, Constant, Variable
from repro.errors import PlanningError
from repro.stores.base import Store

__all__ = ["AtomAccess", "DelegationGroup", "resolve_atoms", "order_atoms", "group_for_delegation"]


@dataclass(slots=True)
class AtomAccess:
    """One rewriting atom resolved against the catalog.

    Carries everything the planner needs: the fragment descriptor, the store,
    the mapping from view column names to the atom's terms, and the input
    columns required by the fragment's access pattern.
    """

    atom: Atom
    descriptor: StorageDescriptor
    store: Store
    columns: tuple[str, ...]

    def variable_by_column(self) -> dict[str, Variable]:
        """View column name → variable bound at that position (if any)."""
        mapping: dict[str, Variable] = {}
        for column, term in zip(self.columns, self.atom.terms):
            if isinstance(term, Variable):
                mapping[column] = term
        return mapping

    def constant_by_column(self) -> dict[str, object]:
        """View column name → constant required at that position (if any)."""
        mapping: dict[str, object] = {}
        for column, term in zip(self.columns, self.atom.terms):
            if isinstance(term, Constant):
                mapping[column] = term.value
        return mapping

    def input_columns(self) -> tuple[str, ...]:
        """Columns that must be bound before the fragment can be accessed."""
        pattern = self.descriptor.access_pattern()
        if pattern is None:
            return ()
        return tuple(self.columns[position] for position in pattern.input_positions())

    def requires_binding(self, parameter_variables: set[Variable]) -> bool:
        """True when some input column is fed by a runtime variable.

        An input position filled by a constant can be pushed into the store
        request directly; an input position filled by a variable (other than a
        caller-supplied parameter) must receive its values tuple-by-tuple from
        the rest of the plan, i.e. through a BindJoin.
        """
        for column in self.input_columns():
            position = self.columns.index(column)
            term = self.atom.terms[position]
            if isinstance(term, Variable) and term not in parameter_variables:
                return True
        return False


@dataclass(slots=True)
class DelegationGroup:
    """A maximal set of atom accesses delegated together to one store."""

    store: Store
    accesses: list[AtomAccess] = field(default_factory=list)

    def variables(self) -> set[Variable]:
        """All variables produced by the group."""
        produced: set[Variable] = set()
        for access in self.accesses:
            produced.update(access.atom.variable_set())
        return produced

    def is_single(self) -> bool:
        """True when the group contains exactly one atom."""
        return len(self.accesses) == 1


def resolve_atoms(
    rewriting: ConjunctiveQuery, manager: StorageDescriptorManager
) -> list[AtomAccess]:
    """Resolve every atom of ``rewriting`` against the fragment catalog."""
    accesses: list[AtomAccess] = []
    for atom in rewriting.body:
        descriptor = manager.fragment(atom.relation)
        columns = descriptor.view_columns()
        if len(columns) != atom.arity:
            raise PlanningError(
                f"atom {atom!r} has arity {atom.arity} but fragment "
                f"{descriptor.fragment_name!r} exposes {len(columns)} columns"
            )
        accesses.append(
            AtomAccess(
                atom=atom,
                descriptor=descriptor,
                store=manager.store(descriptor.store),
                columns=columns,
            )
        )
    return accesses


def order_atoms(
    rewriting: ConjunctiveQuery,
    manager: StorageDescriptorManager,
    registry: AccessPatternRegistry | None = None,
    bound_parameters: Sequence[Variable] = (),
) -> list[AtomAccess]:
    """Order the rewriting atoms so that every access pattern is satisfiable."""
    registry = registry or manager.access_pattern_registry()
    ordered_atoms = feasible_order(rewriting.body, registry, initially_bound=bound_parameters)
    if ordered_atoms is None:
        raise PlanningError(
            f"rewriting {rewriting.name!r} admits no access-pattern-feasible atom order"
        )
    accesses = {id(atom): access for atom, access in zip(rewriting.body, resolve_atoms(rewriting, manager))}
    # feasible_order returns the same Atom objects (they are hashable/immutable),
    # but duplicates of equal atoms must keep a 1:1 pairing: rebuild by matching.
    remaining = list(accesses.values())
    ordered: list[AtomAccess] = []
    for atom in ordered_atoms:
        for index, access in enumerate(remaining):
            if access.atom == atom:
                ordered.append(remaining.pop(index))
                break
        else:  # pragma: no cover - defensive, should be impossible
            raise PlanningError(f"internal error: atom {atom!r} lost during ordering")
    return ordered


def group_for_delegation(ordered: Sequence[AtomAccess]) -> list[DelegationGroup]:
    """Group consecutive accesses that can be delegated to the same store.

    Two consecutive accesses join the same group when they target the same
    store, the store supports joins, neither needs a runtime-supplied binding
    (access-pattern inputs), and the new atom shares at least one variable
    with the group (so the delegated sub-query is a join, not a product).
    """
    groups: list[DelegationGroup] = []
    for access in ordered:
        if groups:
            current = groups[-1]
            same_store = current.store is access.store
            joinable = access.store.capabilities().supports_join
            no_inputs = not access.input_columns()
            shares_variable = bool(current.variables() & access.atom.variable_set())
            if same_store and joinable and no_inputs and shares_variable:
                current.accesses.append(access)
                continue
        groups.append(DelegationGroup(store=access.store, accesses=[access]))
    return groups
