"""Backwards-compatible re-exports of the delegation helpers.

The delegation logic (compiling a group of atoms into the store-request
micro-IR) lives in :class:`repro.translation.planner.Planner`; the grouping
step in :mod:`repro.translation.grouping`.  This module re-exports both so
code organised around the paper's terminology ("rewriting translation →
grouping → delegation") finds them in the expected place.
"""

from repro.translation.grouping import DelegationGroup, group_for_delegation, order_atoms
from repro.translation.planner import Planner, PhysicalPlan

__all__ = ["DelegationGroup", "group_for_delegation", "order_atoms", "Planner", "PhysicalPlan"]
