"""Exception hierarchy for the ESTOCADA reproduction.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Sub-hierarchies mirror the subsystems: the
pivot model / rewriting engine, the catalog, the simulated stores, query
languages, the translation layer, the runtime and the advisor.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Pivot model / rewriting
# ---------------------------------------------------------------------------

class PivotModelError(ReproError):
    """Malformed pivot-model object (atom, query, constraint, ...)."""


class ArityError(PivotModelError):
    """An atom was built with the wrong number of arguments for its relation."""


class ChaseError(ReproError):
    """The chase could not complete (non-termination guard hit, bad input)."""


class ChaseNonTerminationError(ChaseError):
    """The chase exceeded its step budget and was aborted."""


class RewritingError(ReproError):
    """View-based rewriting failed."""


class NoRewritingFoundError(RewritingError):
    """No equivalent rewriting exists over the registered fragments."""


class InfeasibleRewritingError(RewritingError):
    """All candidate rewritings violate an access-pattern (binding) restriction."""


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

class CatalogError(ReproError):
    """Problems registering or resolving datasets, stores or fragments."""


class UnknownDatasetError(CatalogError):
    """The referenced dataset has not been registered."""


class UnknownStoreError(CatalogError):
    """The referenced store has not been registered."""


class UnknownFragmentError(CatalogError):
    """The referenced fragment descriptor does not exist."""


class DuplicateRegistrationError(CatalogError):
    """A dataset, store or fragment with the same name is already registered."""


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------

class StoreError(ReproError):
    """Base class for errors raised by the simulated stores."""


class UnsupportedOperationError(StoreError):
    """The store does not support the requested operation (e.g. joins)."""


class TransientStoreError(StoreError):
    """A request failed in a way that a retry can be expected to fix.

    Models dropped requests, timeouts and mid-stream connection losses: the
    store itself is believed alive, so the replication layer retries the same
    replica (bounded) before failing over.
    """


class StoreCrashedError(StoreError):
    """The store instance is down; requests to it cannot succeed until revival.

    Retrying the same instance is pointless — the replication layer fails
    over to another replica and marks this one unhealthy.
    """


class AllReplicasFailedError(StoreError):
    """Every replica of a replicated store failed to serve a request."""


class AccessPatternViolation(StoreError):
    """A store access did not supply a value for a required (bound) field."""


class SchemaError(StoreError):
    """Tuple or document does not match the declared schema."""


class KeyNotFoundError(StoreError):
    """Key-value lookup for a missing key (when missing_ok is False)."""


# ---------------------------------------------------------------------------
# Durable storage (WAL + columnar segments)
# ---------------------------------------------------------------------------

class DurabilityError(StoreError):
    """Base class for errors raised by the durable segment backing."""


class WalCorruptionError(DurabilityError):
    """A WAL frame failed its CRC or structural check *before* the tail.

    A torn **final** frame is expected after a crash and is silently dropped
    by recovery; corruption anywhere earlier means the log cannot be trusted
    and recovery refuses to proceed past it.
    """


class SegmentCorruptError(DurabilityError):
    """A segment file is unreadable: bad magic, short read, or CRC mismatch."""


class SimulatedCrashError(DurabilityError):
    """An injected crash fired inside the WAL append/fsync window.

    Raised by the disk fault injector's crash hook; tests catch it, reopen
    the directory, and assert recovery restores the pre-crash state.
    """


# ---------------------------------------------------------------------------
# Write path / fragment maintenance
# ---------------------------------------------------------------------------

class WriteError(ReproError):
    """A DML operation (insert/update/delete) could not be applied."""


class PartialWriteError(WriteError):
    """A fan-out write failed on some children after succeeding on others.

    The writer attempts to roll the successful children back by applying the
    inverse delta; ``rolled_back`` records whether that undo itself succeeded
    (when it did not, the named children may hold the write while the others
    do not — the fragment is marked stale so readers never trust it silently).
    """

    def __init__(
        self,
        message: str,
        failed_children: tuple[str, ...] = (),
        rolled_back: bool = True,
    ) -> None:
        super().__init__(message)
        self.failed_children = failed_children
        self.rolled_back = rolled_back


class DeltaError(ReproError):
    """A delta could not be applied or propagated (e.g. deleting a missing row)."""


class MaintenanceError(ReproError):
    """Incremental fragment maintenance failed."""


class MaintenanceCancelledError(MaintenanceError):
    """A maintenance pass was cancelled before draining every pending delta.

    Fragments whose deltas were fully applied are fresh; the rest keep their
    pending deltas and stay *detectably* stale (never silently wrong).
    """


class StaleFragmentError(MaintenanceError):
    """No plan satisfies the query's ``max_staleness`` bound and the stale
    fragments cannot be maintained (e.g. their store is down)."""


class MigrationError(MaintenanceError):
    """A live fragment migration could not start or complete.

    A failed or cancelled migration always rolls back to serving the old
    placement — the catalog is never left half-cut.
    """


# ---------------------------------------------------------------------------
# Query languages
# ---------------------------------------------------------------------------

class LanguageError(ReproError):
    """Base class for query-language front-end errors."""


class ParseError(LanguageError):
    """The query text could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class TranslationError(LanguageError):
    """The parsed query cannot be translated to the pivot model."""


# ---------------------------------------------------------------------------
# Translation / planning / runtime
# ---------------------------------------------------------------------------

class PlanningError(ReproError):
    """The rewriting could not be turned into an executable plan."""


class ExecutionError(ReproError):
    """The runtime engine failed while evaluating a plan."""


class DeadlineExceededError(ExecutionError):
    """The query's time budget elapsed before the result was complete.

    Raised both for queries whose deadline expires while queued in the
    serving layer and for queries cancelled mid-stream by the engine's
    deadline timer; in either case the query's service slot is released and
    its in-flight store requests are cancelled cooperatively.
    """

    def __init__(self, message: str, deadline_seconds: float | None = None) -> None:
        super().__init__(message)
        self.deadline_seconds = deadline_seconds


# ---------------------------------------------------------------------------
# Query service (admission control)
# ---------------------------------------------------------------------------

class ServiceError(ReproError):
    """Base class for errors raised by the multi-tenant query service."""


class OverloadedError(ServiceError):
    """The service fast-rejected a submission instead of queueing it.

    ``reason`` is ``"queue_full"`` (the tenant's bounded queue is at
    capacity — backpressure) or ``"rate_limited"`` (the tenant's token
    bucket is empty — quota).  Shedding at submission keeps rejection cheap
    and latency bounded; callers should back off and retry.
    """

    def __init__(self, message: str, tenant: str = "", reason: str = "") -> None:
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason


class ServiceClosedError(ServiceError):
    """The query service has been shut down and accepts no new submissions."""


class UnknownTenantError(ServiceError):
    """The submission names a tenant the service was not configured with."""


# ---------------------------------------------------------------------------
# Cost model / advisor
# ---------------------------------------------------------------------------

class CostModelError(ReproError):
    """Cost or cardinality estimation failed."""


class AdvisorError(ReproError):
    """The storage advisor could not produce a recommendation."""
