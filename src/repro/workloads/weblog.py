"""HTTP access-log generation and parsing.

The marketplace scenario stores raw web logs in a cluster and processes them
with Spark.  This module produces Apache combined-log-format lines from the
marketplace's browsing records and parses such lines back into flat records,
so benchmarks can exercise the full pipeline (raw text → parsed records →
parallel store).
"""

from __future__ import annotations

import random
import re
from typing import Iterable, Mapping, Sequence

__all__ = ["format_log_line", "generate_log_lines", "parse_log_line", "parse_log_lines"]

_LOG_PATTERN = re.compile(
    r"(?P<ip>\S+) - (?P<user>\S+) \[(?P<timestamp>[^\]]+)\] "
    r'"GET (?P<url>\S+) HTTP/1\.1" (?P<status>\d{3}) (?P<bytes>\d+) '
    r'"(?P<referrer>[^"]*)" "(?P<agent>[^"]*)"'
)


def format_log_line(record: Mapping[str, object], seed: int = 0) -> str:
    """Format one browsing record as an Apache combined log line."""
    line_number = int(record.get("line", 0) or 0)
    rng = random.Random(line_number * 1_000_003 + seed)
    ip = f"192.168.{rng.randint(0, 31)}.{rng.randint(1, 254)}"
    timestamp = f"0{rng.randint(1, 9)}/May/2016:12:{rng.randint(10, 59)}:{rng.randint(10, 59)} +0200"
    agent = rng.choice(("Mozilla/5.0", "curl/7.47", "ESTOCADA-bot/1.0"))
    return (
        f"{ip} - user{record.get('uid', 0)} [{timestamp}] "
        f"\"GET {record.get('url', '/')} HTTP/1.1\" 200 {rng.randint(200, 9000)} "
        f"\"-\" \"{agent}\""
    )


def generate_log_lines(records: Sequence[Mapping[str, object]], seed: int = 0) -> list[str]:
    """Format a batch of browsing records as raw log lines."""
    return [format_log_line(record, seed=seed) for record in records]


def parse_log_line(line: str) -> dict[str, object] | None:
    """Parse one combined-format log line into a flat record (None when malformed)."""
    match = _LOG_PATTERN.match(line)
    if match is None:
        return None
    url = match.group("url")
    sku: int | None = None
    if url.startswith("/product/"):
        tail = url.rsplit("/", 1)[-1]
        if tail.isdigit():
            sku = int(tail)
    user = match.group("user")
    uid = int(user[4:]) if user.startswith("user") and user[4:].isdigit() else None
    return {
        "ip": match.group("ip"),
        "uid": uid,
        "url": url,
        "sku": sku,
        "status": int(match.group("status")),
        "bytes": int(match.group("bytes")),
        "agent": match.group("agent"),
    }


def parse_log_lines(lines: Iterable[str]) -> list[dict[str, object]]:
    """Parse a batch of log lines, silently dropping malformed ones."""
    parsed: list[dict[str, object]] = []
    for line in lines:
        record = parse_log_line(line)
        if record is not None:
            parsed.append(record)
    return parsed
