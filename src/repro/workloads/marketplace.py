"""Synthetic data for the Section-II marketplace scenario.

The generator produces, deterministically from a seed, the five datasets of
the motivating scenario:

* a **product catalog** (JSON documents with title/description text, suited
  to the full-text store),
* **users** (coordinates, payment information) and **orders** (relational),
* **shopping carts** (documents),
* **web logs** of the users' browsing (flat records derived from HTTP logs,
  suited to the parallel store).

Sizes are laptop-scale but keep the paper's proportions: many more log lines
than orders, many more orders than users.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["MarketplaceConfig", "MarketplaceData", "generate_marketplace"]

_CATEGORIES = (
    "shoes", "electronics", "books", "kitchen", "garden", "toys", "sports", "beauty",
)
_ADJECTIVES = ("red", "blue", "compact", "wireless", "classic", "premium", "eco", "smart")
_NOUNS = ("sneaker", "headphone", "novel", "blender", "tent", "puzzle", "racket", "cream")
_CITIES = ("paris", "lyon", "nantes", "lille", "bordeaux", "toulouse", "nice", "rennes")


@dataclass(frozen=True, slots=True)
class MarketplaceConfig:
    """Sizes and seed of the generated marketplace."""

    users: int = 200
    products: int = 300
    orders: int = 800
    carts: int = 150
    log_lines: int = 3000
    seed: int = 7


@dataclass(slots=True)
class MarketplaceData:
    """The generated datasets, each as a list of flat or nested records."""

    users: list[dict[str, object]] = field(default_factory=list)
    products: list[dict[str, object]] = field(default_factory=list)
    orders: list[dict[str, object]] = field(default_factory=list)
    carts: list[dict[str, object]] = field(default_factory=list)
    weblog: list[dict[str, object]] = field(default_factory=list)

    def purchases(self) -> list[dict[str, object]]:
        """Flattened (user, product, category) purchase records from the orders."""
        flattened: list[dict[str, object]] = []
        for order in self.orders:
            for item in order["items"]:
                flattened.append(
                    {
                        "uid": order["uid"],
                        "sku": item["sku"],
                        "category": item["category"],
                        "quantity": item["quantity"],
                        "price": item["price"],
                    }
                )
        return flattened


def generate_marketplace(config: MarketplaceConfig | None = None) -> MarketplaceData:
    """Generate the marketplace datasets deterministically from the config seed."""
    config = config or MarketplaceConfig()
    rng = random.Random(config.seed)
    data = MarketplaceData()

    for uid in range(config.users):
        data.users.append(
            {
                "uid": uid,
                "name": f"user{uid}",
                "city": rng.choice(_CITIES),
                "payment": rng.choice(("card", "paypal", "transfer")),
                "preferred_category": rng.choice(_CATEGORIES),
            }
        )

    for sku in range(config.products):
        adjective = rng.choice(_ADJECTIVES)
        noun = rng.choice(_NOUNS)
        category = rng.choice(_CATEGORIES)
        data.products.append(
            {
                "sku": sku,
                "title": f"{adjective} {noun}",
                "description": f"a {adjective} {noun} for your {category} needs",
                "category": category,
                "price": round(rng.uniform(5, 500), 2),
            }
        )

    for order_id in range(config.orders):
        uid = rng.randrange(config.users)
        item_count = rng.randint(1, 4)
        items = []
        for _ in range(item_count):
            product = data.products[rng.randrange(config.products)]
            items.append(
                {
                    "sku": product["sku"],
                    "category": product["category"],
                    "quantity": rng.randint(1, 3),
                    "price": product["price"],
                }
            )
        data.orders.append(
            {
                "order_id": order_id,
                "uid": uid,
                "status": rng.choice(("shipped", "pending", "delivered")),
                "total": round(sum(i["price"] * i["quantity"] for i in items), 2),
                "items": items,
            }
        )

    for cart_id in range(config.carts):
        uid = rng.randrange(config.users)
        product = data.products[rng.randrange(config.products)]
        data.carts.append(
            {
                "_id": cart_id,
                "uid": uid,
                "items": [
                    {"sku": product["sku"], "quantity": rng.randint(1, 2)}
                ],
                "updated_at": f"2016-0{rng.randint(1, 5)}-{rng.randint(10, 28)}",
            }
        )

    for line in range(config.log_lines):
        uid = rng.randrange(config.users)
        product = data.products[rng.randrange(config.products)]
        data.weblog.append(
            {
                "line": line,
                "uid": uid,
                "url": f"/product/{product['sku']}",
                "sku": product["sku"],
                "category": product["category"],
                "duration_ms": rng.randint(100, 5000),
            }
        )
    return data


def key_lookup_workload(
    data: MarketplaceData, lookups: int = 200, seed: int = 11
) -> list[tuple[str, object]]:
    """The predominant workload of the scenario: key-based searches.

    Returns a list of (kind, key) pairs, where kind is ``"prefs"`` (user
    preference lookup) or ``"cart"`` (shopping-cart lookup).
    """
    rng = random.Random(seed)
    workload: list[tuple[str, object]] = []
    for _ in range(lookups):
        if rng.random() < 0.5:
            workload.append(("prefs", rng.randrange(len(data.users))))
        else:
            cart = data.carts[rng.randrange(len(data.carts))]
            workload.append(("cart", cart["_id"]))
    return workload
