"""AMPLab Big Data Benchmark-style data and queries (laptop scale).

The paper's demo uses datasets "obtained through the Big Data Benchmark".
The benchmark's core schema has two tables:

* ``rankings(pageURL, pageRank, avgDuration)``
* ``uservisits(sourceIP, destURL, visitDate, adRevenue, userAgent,
  countryCode, languageCode, searchWord, duration)``

and three reference queries: a selective scan on rankings, an aggregation on
uservisits and a join of the two.  The generator below produces both tables
deterministically; the query texts are provided in the SQL dialect understood
by :mod:`repro.languages.sql`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["BigDataConfig", "BigDataData", "generate_bigdata", "QUERY_1", "QUERY_2", "QUERY_3"]


@dataclass(frozen=True, slots=True)
class BigDataConfig:
    """Sizes and seed of the generated benchmark data."""

    pages: int = 1000
    visits: int = 5000
    seed: int = 23


@dataclass(slots=True)
class BigDataData:
    """The generated Rankings and UserVisits tables."""

    rankings: list[dict[str, object]] = field(default_factory=list)
    uservisits: list[dict[str, object]] = field(default_factory=list)


def generate_bigdata(config: BigDataConfig | None = None) -> BigDataData:
    """Generate Rankings and UserVisits deterministically from the config seed."""
    config = config or BigDataConfig()
    rng = random.Random(config.seed)
    data = BigDataData()

    urls = [f"url{page}" for page in range(config.pages)]
    for url in urls:
        data.rankings.append(
            {
                "pageURL": url,
                "pageRank": rng.randint(1, 1000),
                "avgDuration": rng.randint(1, 300),
            }
        )

    countries = ("FR", "DE", "US", "JP", "BR", "IN")
    words = ("estocada", "polystore", "rewrite", "chase", "view", "hybrid")
    for _ in range(config.visits):
        data.uservisits.append(
            {
                "sourceIP": f"10.0.{rng.randint(0, 31)}.{rng.randint(1, 254)}",
                "destURL": rng.choice(urls),
                "visitDate": f"2015-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
                "adRevenue": round(rng.uniform(0.1, 10.0), 3),
                "userAgent": rng.choice(("firefox", "chrome", "safari")),
                "countryCode": rng.choice(countries),
                "languageCode": "en",
                "searchWord": rng.choice(words),
                "duration": rng.randint(1, 60),
            }
        )
    return data


#: Query 1 (scan): pages above a page-rank threshold.
QUERY_1 = "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 500"

#: Query 2 (aggregation): ad revenue per source IP.
QUERY_2 = (
    "SELECT sourceIP, SUM(adRevenue) AS totalRevenue "
    "FROM uservisits GROUP BY sourceIP"
)

#: Query 3 (join): revenue and rank of the pages visited from one country.
QUERY_3 = (
    "SELECT uv.destURL, r.pageRank, SUM(uv.adRevenue) AS totalRevenue "
    "FROM rankings r, uservisits uv "
    "WHERE r.pageURL = uv.destURL AND uv.countryCode = 'FR' "
    "GROUP BY uv.destURL, r.pageRank"
)
