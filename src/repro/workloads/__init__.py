"""Synthetic workload and data generators (marketplace, Big Data Benchmark, logs)."""

from repro.workloads.bigdata import BigDataConfig, BigDataData, generate_bigdata
from repro.workloads.marketplace import (
    MarketplaceConfig,
    MarketplaceData,
    generate_marketplace,
    key_lookup_workload,
)
from repro.workloads.weblog import generate_log_lines, parse_log_line, parse_log_lines

__all__ = [
    "MarketplaceConfig",
    "MarketplaceData",
    "generate_marketplace",
    "key_lookup_workload",
    "BigDataConfig",
    "BigDataData",
    "generate_bigdata",
    "generate_log_lines",
    "parse_log_line",
    "parse_log_lines",
]
