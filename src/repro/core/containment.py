"""Conjunctive-query containment and equivalence (plain and under constraints).

Containment ``Q1 ⊑ Q2`` (every answer of Q1 is an answer of Q2, over all
instances) is decided with the classical homomorphism criterion: freeze Q1
into its canonical instance and look for a homomorphism from Q2's body into
it that maps Q2's head onto Q1's frozen head.

Containment *under constraints* first chases the canonical instance of Q1
with the constraints, then performs the same homomorphism check against the
chased instance.  This is sound and complete for weakly-acyclic constraint
sets (the ones this library generates).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.chase import ChaseConfig, ChaseFailure, chase
from repro.core.constraints import Constraint, ConstraintSet
from repro.core.homomorphism import InstanceIndex, find_homomorphism
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Substitution, Term
from repro.errors import PivotModelError

__all__ = [
    "is_contained_in",
    "is_equivalent",
    "is_contained_under_constraints",
    "is_equivalent_under_constraints",
]


def _head_requirement(
    container: ConjunctiveQuery,
    frozen_head_terms: tuple[Term, ...],
) -> "callable":
    """Build the filter ensuring the containment homomorphism preserves the head."""
    if len(container.head_terms) != len(frozen_head_terms):
        raise PivotModelError(
            "cannot compare containment of queries with different head arities"
        )

    def requirement(homomorphism: Substitution) -> bool:
        for container_term, frozen_term in zip(container.head_terms, frozen_head_terms):
            image = homomorphism.resolve(container_term)
            if image != frozen_term:
                return False
        return True

    return requirement


def is_contained_in(contained: ConjunctiveQuery, container: ConjunctiveQuery) -> bool:
    """Decide ``contained ⊑ container`` with the homomorphism criterion."""
    frozen_facts, freezing = contained.canonical_instance()
    frozen_head = tuple(freezing.resolve(t) for t in contained.head_terms)
    index = InstanceIndex(frozen_facts)
    homomorphism = find_homomorphism(
        container.body, index, requirement=_head_requirement(container, frozen_head)
    )
    return homomorphism is not None


def is_equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Decide plain CQ equivalence (mutual containment)."""
    return is_contained_in(left, right) and is_contained_in(right, left)


def is_contained_under_constraints(
    contained: ConjunctiveQuery,
    container: ConjunctiveQuery,
    constraints: ConstraintSet | Iterable[Constraint],
    config: ChaseConfig | None = None,
) -> bool:
    """Decide ``contained ⊑_Σ container`` by chasing then checking homomorphism.

    If the chase fails (an EGD equates two distinct constants), the canonical
    instance is inconsistent with the constraints, hence the containment holds
    vacuously and True is returned.
    """
    frozen_facts, freezing = contained.canonical_instance()
    frozen_head = tuple(freezing.resolve(t) for t in contained.head_terms)
    try:
        result = chase(frozen_facts, constraints, config=config)
    except ChaseFailure:
        return True
    # EGD firings may have merged labelled nulls appearing in the frozen head.
    resolved_head = tuple(_resolve_equalities(t, result.equalities) for t in frozen_head)
    index = result.index()
    homomorphism = find_homomorphism(
        container.body, index, requirement=_head_requirement(container, resolved_head)
    )
    return homomorphism is not None


def _resolve_equalities(term: Term, equalities: dict[Constant, Term]) -> Term:
    """Follow equality rewrites applied by the chase until a fixpoint."""
    seen: set[Term] = set()
    current = term
    while isinstance(current, Constant) and current in equalities and current not in seen:
        seen.add(current)
        current = equalities[current]
    return current


def is_equivalent_under_constraints(
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
    constraints: ConstraintSet | Iterable[Constraint],
    config: ChaseConfig | None = None,
) -> bool:
    """Decide equivalence under constraints (mutual constrained containment)."""
    return is_contained_under_constraints(
        left, right, constraints, config=config
    ) and is_contained_under_constraints(right, left, constraints, config=config)
