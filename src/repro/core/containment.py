"""Conjunctive-query containment and equivalence (plain and under constraints).

Containment ``Q1 ⊑ Q2`` (every answer of Q1 is an answer of Q2, over all
instances) is decided with the classical homomorphism criterion: freeze Q1
into its canonical instance and look for a homomorphism from Q2's body into
it that maps Q2's head onto Q1's frozen head.

Containment *under constraints* first chases the canonical instance of Q1
with the constraints, then performs the same homomorphism check against the
chased instance.  This is sound and complete for weakly-acyclic constraint
sets (the ones this library generates).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.chase import ChaseConfig, ChaseFailure, ChaseResult, chase
from repro.core.constraints import Constraint, ConstraintSet
from repro.core.homomorphism import InstanceIndex, find_homomorphism
from repro.core.memo import LRUMemo, memo_enabled
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Substitution, Term, Variable
from repro.errors import PivotModelError

__all__ = [
    "is_contained_in",
    "is_equivalent",
    "is_contained_under_constraints",
    "is_equivalent_under_constraints",
    "canonical_query_signature",
]


def canonical_query_signature(query: ConjunctiveQuery) -> tuple:
    """An alpha-invariant, hashable fingerprint of a conjunctive query.

    Variables are renamed to their first-occurrence index (head first, then
    body in atom order), so two queries differing only in variable names get
    the same signature.  Containment and equivalence are invariant under such
    renaming, which makes the signature a sound memo key component.
    """
    numbering: dict[Variable, int] = {}

    def canon(term: Term) -> tuple:
        if isinstance(term, Variable):
            number = numbering.get(term)
            if number is None:
                number = numbering[term] = len(numbering)
            return ("v", number)
        return ("c", term)

    head = tuple(canon(t) for t in query.head_terms)
    body = tuple(
        (atom.relation, tuple(canon(t) for t in atom.terms)) for atom in query.body
    )
    return (query.head_relation, head, body)


# The backchase checks dozens-to-thousands of candidates against the same
# query under the same constraint set; both the canonical-instance chase and
# the full containment verdicts repeat heavily.  Keys use the constraint set's
# mutation token (see repro.core.constraints), never its contents.
_chase_memo = LRUMemo("containment_chase", max_entries=2048)
_containment_memo = LRUMemo("containment_verdict", max_entries=8192)
_CHASE_FAILED = object()


def _chased(
    frozen_facts: frozenset,
    constraints: ConstraintSet,
    config: ChaseConfig | None,
) -> ChaseResult | object:
    """Chase a canonical instance, memoized; returns ``_CHASE_FAILED`` on EGD failure."""
    if not memo_enabled():
        try:
            return chase(frozen_facts, constraints, config=config)
        except ChaseFailure:
            return _CHASE_FAILED
    key = (frozen_facts, constraints.token, config)
    cached = _chase_memo.get(key)
    if cached is _chase_memo.missing:
        try:
            cached = chase(frozen_facts, constraints, config=config)
        except ChaseFailure:
            cached = _CHASE_FAILED
        _chase_memo.put(key, cached)
    return cached


def _head_requirement(
    container: ConjunctiveQuery,
    frozen_head_terms: tuple[Term, ...],
) -> "callable":
    """Build the filter ensuring the containment homomorphism preserves the head."""
    if len(container.head_terms) != len(frozen_head_terms):
        raise PivotModelError(
            "cannot compare containment of queries with different head arities"
        )

    def requirement(homomorphism: Substitution) -> bool:
        for container_term, frozen_term in zip(container.head_terms, frozen_head_terms):
            image = homomorphism.resolve(container_term)
            if image != frozen_term:
                return False
        return True

    return requirement


def is_contained_in(contained: ConjunctiveQuery, container: ConjunctiveQuery) -> bool:
    """Decide ``contained ⊑ container`` with the homomorphism criterion."""
    frozen_facts, freezing = contained.canonical_instance()
    frozen_head = tuple(freezing.resolve(t) for t in contained.head_terms)
    index = InstanceIndex(frozen_facts)
    homomorphism = find_homomorphism(
        container.body, index, requirement=_head_requirement(container, frozen_head)
    )
    return homomorphism is not None


def is_equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Decide plain CQ equivalence (mutual containment)."""
    return is_contained_in(left, right) and is_contained_in(right, left)


def is_contained_under_constraints(
    contained: ConjunctiveQuery,
    container: ConjunctiveQuery,
    constraints: ConstraintSet | Iterable[Constraint],
    config: ChaseConfig | None = None,
) -> bool:
    """Decide ``contained ⊑_Σ container`` by chasing then checking homomorphism.

    If the chase fails (an EGD equates two distinct constants), the canonical
    instance is inconsistent with the constraints, hence the containment holds
    vacuously and True is returned.

    Verdicts are memoized on the alpha-invariant signatures of both queries
    plus the constraint set's mutation token; the chase of the canonical
    instance is memoized separately (it is shared by every containment check
    against the same contained query).
    """
    if not isinstance(constraints, ConstraintSet):
        constraints = ConstraintSet(constraints)
    verdict_key = None
    if memo_enabled():
        verdict_key = (
            canonical_query_signature(contained),
            canonical_query_signature(container),
            constraints.token,
            config,
        )
        cached = _containment_memo.get(verdict_key)
        if cached is not _containment_memo.missing:
            return cached  # type: ignore[return-value]
    frozen_facts, freezing = contained.canonical_instance()
    frozen_head = tuple(freezing.resolve(t) for t in contained.head_terms)
    result = _chased(frozen_facts, constraints, config)
    if result is _CHASE_FAILED:
        if verdict_key is not None:
            _containment_memo.put(verdict_key, True)
        return True
    # EGD firings may have merged labelled nulls appearing in the frozen head.
    resolved_head = tuple(_resolve_equalities(t, result.equalities) for t in frozen_head)
    index = result.index()
    homomorphism = find_homomorphism(
        container.body, index, requirement=_head_requirement(container, resolved_head)
    )
    verdict = homomorphism is not None
    if verdict_key is not None:
        _containment_memo.put(verdict_key, verdict)
    return verdict


def _resolve_equalities(term: Term, equalities: dict[Constant, Term]) -> Term:
    """Follow equality rewrites applied by the chase until a fixpoint."""
    seen: set[Term] = set()
    current = term
    while isinstance(current, Constant) and current in equalities and current not in seen:
        seen.add(current)
        current = equalities[current]
    return current


def is_equivalent_under_constraints(
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
    constraints: ConstraintSet | Iterable[Constraint],
    config: ChaseConfig | None = None,
) -> bool:
    """Decide equivalence under constraints (mutual constrained containment)."""
    return is_contained_under_constraints(
        left, right, constraints, config=config
    ) and is_contained_under_constraints(right, left, constraints, config=config)
