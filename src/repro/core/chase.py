"""The chase procedure (standard and provenance-aware) over pivot instances.

The chase takes an instance (a set of ground atoms whose "unknown" values are
labelled nulls) and a set of TGDs/EGDs, and repeatedly *fires* constraints
whose body matches the instance but whose conclusion does not yet hold:

* firing a TGD adds the head atoms, inventing fresh labelled nulls for the
  existential variables;
* firing an EGD equates two terms — replacing a labelled null by the other
  term throughout the instance — or *fails* if both are distinct constants.

ESTOCADA uses the chase in two places: to compute the *universal plan*
(chasing the query with the forward view constraints and data-model
constraints) and inside the backchase to check candidate rewritings for
equivalence.  The provenance-aware variant additionally tracks, for every
derived fact, which view atoms it depends on; this is the key ingredient of
the PACB algorithm (see :mod:`repro.core.pacb`).

Termination: with arbitrary existential TGDs the chase may not terminate.
All constraint sets produced by this library are weakly acyclic in practice,
but a configurable step budget guards against accidental non-termination and
raises :class:`ChaseNonTerminationError` when exceeded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.constraints import EGD, TGD, Constraint, ConstraintSet
from repro.core.homomorphism import InstanceIndex, find_homomorphism, iterate_homomorphisms
from repro.core.index import index_enabled
from repro.core.provenance import ProvenanceFormula
from repro.core.terms import Atom, Constant, Substitution, Term
from repro.errors import ChaseError, ChaseNonTerminationError

__all__ = ["ChaseResult", "ChaseConfig", "chase", "ChaseFailure", "provenance_chase", "ProvenanceChaseResult"]

_null_counter = itertools.count()


def _fresh_null(hint: str = "n") -> Constant:
    """Invent a fresh labelled null (a constant tagged with the ``_:`` prefix)."""
    return Constant(f"_:c{next(_null_counter)}_{hint}")


def is_labelled_null(term: Term) -> bool:
    """True when ``term`` is a labelled null (invented by freezing or the chase)."""
    return (
        isinstance(term, Constant)
        and isinstance(term.value, str)
        and term.value.startswith("_:")
    )


class ChaseFailure(ChaseError):
    """An EGD tried to equate two distinct constants: the chase fails."""


@dataclass(frozen=True, slots=True)
class ChaseConfig:
    """Tuning knobs for the chase.

    Attributes
    ----------
    max_steps:
        Upper bound on the number of constraint firings before the chase is
        declared non-terminating.
    max_facts:
        Upper bound on the size of the chased instance.
    """

    max_steps: int = 10_000
    max_facts: int = 100_000


@dataclass(slots=True)
class ChaseResult:
    """Outcome of a (standard) chase run."""

    facts: frozenset[Atom]
    steps: int
    fired_constraints: tuple[str, ...]
    equalities: dict[Constant, Term] = field(default_factory=dict)

    def index(self) -> InstanceIndex:
        """The chased instance as a homomorphism index."""
        return InstanceIndex(self.facts)


def _tgd_is_satisfied(tgd: TGD, trigger: Substitution, index: InstanceIndex) -> bool:
    """Check whether a TGD trigger is already satisfied (restricted chase)."""
    return (
        find_homomorphism(tgd.head, index, seed=_frontier_seed(tgd, trigger)) is not None
    )


def _frontier_seed(tgd: TGD, trigger: Substitution) -> Substitution:
    """Restrict a body trigger to the frontier variables (shared with the head)."""
    seed = Substitution.empty()
    for variable in tgd.frontier():
        value = trigger.get(variable)
        if value is not None:
            seed = seed.bind(variable, value)
    return seed


def _fire_tgd(tgd: TGD, trigger: Substitution) -> list[Atom]:
    """Produce the head facts of a TGD firing, inventing nulls for existentials."""
    extended = trigger
    for variable in sorted(tgd.existential_variables(), key=lambda v: v.name):
        extended = extended.bind(variable, _fresh_null(variable.name))
    return [atom.apply(extended) for atom in tgd.head]


def _apply_equality(
    facts: set[Atom], old: Term, new: Term
) -> set[Atom]:
    """Replace every occurrence of ``old`` by ``new`` in ``facts``."""
    replaced: set[Atom] = set()
    for fact in facts:
        if old in fact.terms:
            replaced.add(
                Atom(fact.relation, [new if t == old else t for t in fact.terms])
            )
        else:
            replaced.add(fact)
    return replaced


def _resolve_egd_equality(left: Term, right: Term) -> tuple[Term, Term] | None:
    """Decide how to apply the equality ``left = right``.

    Returns ``(old, new)`` — replace ``old`` by ``new`` — or None when the
    terms are already equal.  Raises :class:`ChaseFailure` when both terms are
    distinct non-null constants.
    """
    if left == right:
        return None
    left_null = is_labelled_null(left)
    right_null = is_labelled_null(right)
    if left_null and right_null:
        # Deterministic orientation keeps the chase confluent for our purposes:
        # always replace the lexicographically larger null by the smaller one.
        first, second = sorted((left, right), key=lambda t: str(t.value))
        return second, first
    if left_null:
        return left, right
    if right_null:
        return right, left
    raise ChaseFailure(f"EGD requires {left} = {right}, both are distinct constants")


def chase(
    facts: Iterable[Atom],
    constraints: ConstraintSet | Iterable[Constraint],
    config: ChaseConfig | None = None,
) -> ChaseResult:
    """Run the standard (restricted) chase of ``facts`` with ``constraints``.

    Returns a :class:`ChaseResult`; raises :class:`ChaseFailure` when an EGD
    fails and :class:`ChaseNonTerminationError` when the step budget is hit.
    """
    if not isinstance(constraints, ConstraintSet):
        constraints = ConstraintSet(constraints)
    config = config or ChaseConfig()

    current: set[Atom] = set(facts)
    equalities: dict[Constant, Term] = {}
    steps = 0
    fired: list[str] = []
    dispatch = index_enabled()

    changed = True
    while changed:
        changed = False
        index = InstanceIndex(current)
        for constraint, body_relations in constraints.constraints_with_body_relations():
            # Inverted dispatch: a constraint whose body mentions a relation
            # absent from the instance has no trigger, so a full scan would
            # find nothing.  Skipping it here fires the same constraints in
            # the same order as the unindexed scan (``REPRO_REWRITE_INDEX=0``).
            if dispatch and not body_relations <= index.relations():
                continue
            if isinstance(constraint, TGD):
                new_facts: list[Atom] = []
                for trigger in iterate_homomorphisms(constraint.body, index):
                    if _tgd_is_satisfied(constraint, trigger, index):
                        continue
                    steps += 1
                    if steps > config.max_steps:
                        raise ChaseNonTerminationError(
                            f"chase exceeded {config.max_steps} steps"
                        )
                    produced = _fire_tgd(constraint, trigger)
                    for fact in produced:
                        if fact not in current:
                            new_facts.append(fact)
                    fired.append(constraint.name)
                if new_facts:
                    current.update(new_facts)
                    index.add_all(new_facts)
                    changed = True
                    if len(current) > config.max_facts:
                        raise ChaseNonTerminationError(
                            f"chase instance exceeded {config.max_facts} facts"
                        )
            else:  # EGD
                # EGDs may cascade; iterate until no trigger produces a change.
                egd_changed = True
                while egd_changed:
                    egd_changed = False
                    index = InstanceIndex(current)
                    for trigger in iterate_homomorphisms(constraint.body, index):
                        for left_var, right_var in constraint.equalities:
                            left = trigger.resolve(left_var)
                            right = trigger.resolve(right_var)
                            resolution = _resolve_egd_equality(left, right)
                            if resolution is None:
                                continue
                            old, new = resolution
                            steps += 1
                            if steps > config.max_steps:
                                raise ChaseNonTerminationError(
                                    f"chase exceeded {config.max_steps} steps"
                                )
                            current = _apply_equality(current, old, new)
                            if isinstance(old, Constant):
                                equalities[old] = new
                            fired.append(constraint.name)
                            changed = True
                            egd_changed = True
                            break
                        if egd_changed:
                            break

    return ChaseResult(
        facts=frozenset(current),
        steps=steps,
        fired_constraints=tuple(fired),
        equalities=equalities,
    )


# ---------------------------------------------------------------------------
# Provenance-aware chase
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class ProvenanceChaseResult:
    """Outcome of a provenance-aware chase run.

    ``provenance`` maps every fact of the chased instance to the DNF formula
    over provenance variables describing which annotated input facts it
    depends on.  Input facts passed without an annotation carry the ``TRUE``
    formula (they are "free": not charged to any view atom).
    """

    facts: frozenset[Atom]
    provenance: dict[Atom, ProvenanceFormula]
    steps: int
    equalities: dict[Constant, Term] = field(default_factory=dict)

    def index(self) -> InstanceIndex:
        """The chased instance as a homomorphism index."""
        return InstanceIndex(self.facts)


def provenance_chase(
    annotated_facts: Mapping[Atom, ProvenanceFormula],
    constraints: ConstraintSet | Iterable[Constraint],
    config: ChaseConfig | None = None,
) -> ProvenanceChaseResult:
    """Chase while tracking provenance formulas.

    Only TGDs and EGDs are supported.  For TGD firings the provenance of each
    produced fact is the conjunction of the provenances of the trigger's image
    facts; if the fact already exists, its provenance is extended with a
    disjunct.  EGD firings merge terms and take the disjunction of the merged
    facts' provenances.

    Unlike the standard restricted chase, a TGD trigger is re-fired when it
    can *improve* the provenance of existing facts (derive them more cheaply),
    which is required for the PACB read-off to discover every minimal
    rewriting.
    """
    if not isinstance(constraints, ConstraintSet):
        constraints = ConstraintSet(constraints)
    config = config or ChaseConfig()

    provenance: dict[Atom, ProvenanceFormula] = dict(annotated_facts)
    current: set[Atom] = set(annotated_facts)
    equalities: dict[Constant, Term] = {}
    steps = 0
    dispatch = index_enabled()

    changed = True
    while changed:
        changed = False
        index = InstanceIndex(current)
        for constraint, body_relations in constraints.constraints_with_body_relations():
            # Same inverted dispatch as the standard chase (see above).
            if dispatch and not body_relations <= index.relations():
                continue
            if isinstance(constraint, TGD):
                for trigger in iterate_homomorphisms(constraint.body, index):
                    trigger_provenance = ProvenanceFormula.true()
                    for body_atom in constraint.body:
                        image = body_atom.apply(trigger)
                        trigger_provenance = trigger_provenance.conjunction(
                            provenance.get(image, ProvenanceFormula.true())
                        )
                    extended = trigger
                    existentials = sorted(
                        constraint.existential_variables(), key=lambda v: v.name
                    )
                    # Restricted-chase check: only invent new nulls when the head
                    # cannot be satisfied at all with the frontier bindings.
                    head_match = find_homomorphism(
                        constraint.head, index, seed=_frontier_seed(constraint, trigger)
                    )
                    if head_match is not None:
                        # Head already present: only update provenance.
                        updated = False
                        for head_atom in constraint.head:
                            image = head_atom.apply(head_match)
                            old = provenance.get(image, ProvenanceFormula.false())
                            new = old.disjunction(trigger_provenance)
                            if new != old:
                                provenance[image] = new
                                updated = True
                        if updated:
                            changed = True
                            steps += 1
                            if steps > config.max_steps:
                                raise ChaseNonTerminationError(
                                    f"provenance chase exceeded {config.max_steps} steps"
                                )
                        continue
                    for variable in existentials:
                        extended = extended.bind(variable, _fresh_null(variable.name))
                    steps += 1
                    if steps > config.max_steps:
                        raise ChaseNonTerminationError(
                            f"provenance chase exceeded {config.max_steps} steps"
                        )
                    for head_atom in constraint.head:
                        fact = head_atom.apply(extended)
                        old = provenance.get(fact)
                        if old is None:
                            provenance[fact] = trigger_provenance
                            current.add(fact)
                            index.add(fact)
                            changed = True
                        else:
                            new = old.disjunction(trigger_provenance)
                            if new != old:
                                provenance[fact] = new
                                changed = True
                    if len(current) > config.max_facts:
                        raise ChaseNonTerminationError(
                            f"provenance chase instance exceeded {config.max_facts} facts"
                        )
            else:  # EGD
                egd_changed = True
                while egd_changed:
                    egd_changed = False
                    index = InstanceIndex(current)
                    for trigger in iterate_homomorphisms(constraint.body, index):
                        for left_var, right_var in constraint.equalities:
                            left = trigger.resolve(left_var)
                            right = trigger.resolve(right_var)
                            resolution = _resolve_egd_equality(left, right)
                            if resolution is None:
                                continue
                            old_term, new_term = resolution
                            steps += 1
                            if steps > config.max_steps:
                                raise ChaseNonTerminationError(
                                    f"provenance chase exceeded {config.max_steps} steps"
                                )
                            trigger_provenance = ProvenanceFormula.true()
                            for body_atom in constraint.body:
                                image = body_atom.apply(trigger)
                                trigger_provenance = trigger_provenance.conjunction(
                                    provenance.get(image, ProvenanceFormula.true())
                                )
                            new_provenance: dict[Atom, ProvenanceFormula] = {}
                            for fact, formula in provenance.items():
                                if old_term in fact.terms:
                                    renamed = Atom(
                                        fact.relation,
                                        [new_term if t == old_term else t for t in fact.terms],
                                    )
                                    merged = formula.conjunction(trigger_provenance)
                                    existing = new_provenance.get(renamed)
                                    if existing is not None:
                                        merged = existing.disjunction(merged)
                                    other = provenance.get(renamed)
                                    if other is not None and renamed != fact:
                                        merged = merged.disjunction(other)
                                    new_provenance[renamed] = merged
                                else:
                                    existing = new_provenance.get(fact)
                                    if existing is not None:
                                        new_provenance[fact] = existing.disjunction(formula)
                                    else:
                                        new_provenance[fact] = formula
                            provenance = new_provenance
                            current = set(provenance)
                            if isinstance(old_term, Constant):
                                equalities[old_term] = new_term
                            changed = True
                            egd_changed = True
                            break
                        if egd_changed:
                            break

    return ProvenanceChaseResult(
        facts=frozenset(current), provenance=provenance, steps=steps, equalities=equalities
    )
