"""Constraints of the pivot model: TGDs, EGDs and constraint sets.

ESTOCADA describes each application data model and each storage data model
inside a single relational pivot model *plus constraints*.  Two classical
constraint classes suffice:

* **Tuple-generating dependencies (TGDs)** — "whenever the body holds, the
  head must hold (possibly with new existential values)".  They capture view
  definitions (two TGDs per view: forward and backward), data-model axioms
  ("every child is a descendant"), inclusion dependencies and access mappings.
* **Equality-generating dependencies (EGDs)** — "whenever the body holds, two
  terms must be equal".  They capture keys, functional dependencies and
  single-valuedness ("every node has exactly one tag").

A :class:`ConstraintSet` bundles the constraints describing a schema or a
fragment layout and offers the indexing used by the chase.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from repro.core.terms import Atom, Variable
from repro.errors import PivotModelError

__all__ = ["TGD", "EGD", "Constraint", "ConstraintSet", "key_constraint", "functional_dependency", "inclusion_dependency"]


class TGD:
    """A tuple-generating dependency ``∀x̄ (body(x̄) → ∃ȳ head(x̄, ȳ))``.

    ``body`` and ``head`` are conjunctions of atoms.  Variables appearing in
    the head but not in the body are existentially quantified; the chase
    invents labelled nulls for them.
    """

    __slots__ = ("body", "head", "name", "_hash")

    def __init__(self, body: Sequence[Atom], head: Sequence[Atom], name: str | None = None) -> None:
        if not body or not head:
            raise PivotModelError("a TGD needs a non-empty body and a non-empty head")
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "head", tuple(head))
        object.__setattr__(self, "name", name or "tgd")
        object.__setattr__(self, "_hash", hash((frozenset(self.body), frozenset(self.head))))

    def __setattr__(self, key: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("TGD is immutable")

    # -- accessors ---------------------------------------------------------
    def body_variables(self) -> frozenset[Variable]:
        """Variables occurring in the body (universally quantified)."""
        result: set[Variable] = set()
        for atom in self.body:
            result.update(atom.variable_set())
        return frozenset(result)

    def head_variables(self) -> frozenset[Variable]:
        """All variables occurring in the head."""
        result: set[Variable] = set()
        for atom in self.head:
            result.update(atom.variable_set())
        return frozenset(result)

    def existential_variables(self) -> frozenset[Variable]:
        """Head variables that do not appear in the body."""
        return self.head_variables() - self.body_variables()

    def frontier(self) -> frozenset[Variable]:
        """Variables shared between body and head (the 'frontier')."""
        return self.head_variables() & self.body_variables()

    def is_full(self) -> bool:
        """True when the TGD has no existential variables (a *full* TGD)."""
        return not self.existential_variables()

    def relations(self) -> frozenset[str]:
        """All relation names used by this constraint."""
        return frozenset(a.relation for a in self.body) | frozenset(a.relation for a in self.head)

    # -- protocol -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TGD)
            and frozenset(self.body) == frozenset(other.body)
            and frozenset(self.head) == frozenset(other.head)
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(repr(a) for a in self.body)
        head = ", ".join(repr(a) for a in self.head)
        return f"[{self.name}] {body} -> {head}"


class EGD:
    """An equality-generating dependency ``∀x̄ (body(x̄) → x = y)``.

    ``equalities`` is a sequence of variable pairs that must be equal whenever
    the body holds.  EGDs express keys and functional dependencies.
    """

    __slots__ = ("body", "equalities", "name", "_hash")

    def __init__(
        self,
        body: Sequence[Atom],
        equalities: Sequence[tuple[Variable, Variable]],
        name: str | None = None,
    ) -> None:
        if not body:
            raise PivotModelError("an EGD needs a non-empty body")
        if not equalities:
            raise PivotModelError("an EGD needs at least one equality")
        body_vars: set[Variable] = set()
        for atom in body:
            body_vars.update(atom.variable_set())
        normalized: list[tuple[Variable, Variable]] = []
        for left, right in equalities:
            if left not in body_vars or right not in body_vars:
                raise PivotModelError(
                    f"EGD equality {left} = {right} uses variables not in the body"
                )
            normalized.append((left, right))
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "equalities", tuple(normalized))
        object.__setattr__(self, "name", name or "egd")
        object.__setattr__(self, "_hash", hash((frozenset(self.body), tuple(normalized))))

    def __setattr__(self, key: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("EGD is immutable")

    def body_variables(self) -> frozenset[Variable]:
        """Variables occurring in the body."""
        result: set[Variable] = set()
        for atom in self.body:
            result.update(atom.variable_set())
        return frozenset(result)

    def relations(self) -> frozenset[str]:
        """All relation names used by this constraint."""
        return frozenset(a.relation for a in self.body)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EGD)
            and frozenset(self.body) == frozenset(other.body)
            and self.equalities == other.equalities
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(repr(a) for a in self.body)
        eqs = ", ".join(f"{left} = {right}" for left, right in self.equalities)
        return f"[{self.name}] {body} -> {eqs}"


Constraint = TGD | EGD

# Globally monotonic tokens identifying constraint-set states.  Memo caches
# (see :mod:`repro.core.memo`) key entries on the token instead of the set's
# contents: a mutated or freshly built set gets a token that has never been
# seen before, so stale memo entries can never alias it.
_mutation_tokens = itertools.count()


class ConstraintSet:
    """An ordered, indexed collection of TGDs and EGDs.

    The chase iterates over constraints many times; the set indexes TGDs and
    EGDs by the relations appearing in their bodies so that only constraints
    potentially triggered by newly derived facts are re-examined.
    """

    __slots__ = ("_constraints", "_by_body_relation", "_body_relations", "_token")

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        self._constraints: list[Constraint] = []
        self._by_body_relation: dict[str, list[tuple[int, Constraint]]] = {}
        self._body_relations: list[frozenset[str]] = []
        self._token: int = next(_mutation_tokens)
        for constraint in constraints:
            self.add(constraint)

    @property
    def token(self) -> int:
        """Monotonic token identifying this set's current state (see module note)."""
        return self._token

    def add(self, constraint: Constraint) -> None:
        """Add a constraint (duplicates are silently ignored)."""
        if not isinstance(constraint, (TGD, EGD)):
            raise PivotModelError(f"not a constraint: {constraint!r}")
        if constraint in self._constraints:
            return
        sequence = len(self._constraints)
        self._constraints.append(constraint)
        body_relations = frozenset(atom.relation for atom in constraint.body)
        self._body_relations.append(body_relations)
        for relation in body_relations:
            self._by_body_relation.setdefault(relation, []).append((sequence, constraint))
        self._token = next(_mutation_tokens)

    def extend(self, constraints: Iterable[Constraint]) -> None:
        """Add several constraints."""
        for constraint in constraints:
            self.add(constraint)

    def union(self, other: "ConstraintSet | Iterable[Constraint]") -> "ConstraintSet":
        """A new set containing the constraints of both operands."""
        result = ConstraintSet(self._constraints)
        result.extend(other)
        return result

    # -- access --------------------------------------------------------------
    def tgds(self) -> tuple[TGD, ...]:
        """All TGDs, in insertion order."""
        return tuple(c for c in self._constraints if isinstance(c, TGD))

    def egds(self) -> tuple[EGD, ...]:
        """All EGDs, in insertion order."""
        return tuple(c for c in self._constraints if isinstance(c, EGD))

    def triggered_by(self, relation: str) -> tuple[Constraint, ...]:
        """Constraints whose body mentions ``relation``."""
        return tuple(c for _, c in self._by_body_relation.get(relation, ()))

    def relevant_to(self, relations: Iterable[str]) -> tuple[Constraint, ...]:
        """Constraints whose body relations all occur in ``relations``.

        This is the inverted-index dispatch used by the chase: a constraint
        whose body mentions a relation absent from the instance can have no
        trigger, so scanning it is wasted work.  Insertion order is preserved,
        which keeps chase firing order (and hence labelled-null numbering)
        identical to a full scan over the same instance.
        """
        present = relations if isinstance(relations, (set, frozenset)) else set(relations)
        picked: dict[int, Constraint] = {}
        seen: set[int] = set()
        for relation in present:
            for sequence, constraint in self._by_body_relation.get(relation, ()):
                if sequence in seen:
                    continue
                seen.add(sequence)
                if self._body_relations[sequence] <= present:
                    picked[sequence] = constraint
        return tuple(picked[sequence] for sequence in sorted(picked))

    def constraints_with_body_relations(self) -> Iterator[tuple[Constraint, frozenset[str]]]:
        """Pairs ``(constraint, body relation names)`` in insertion order.

        Lets the chase skip constraints whose body mentions an absent relation
        without recomputing the relation sets every round.
        """
        return zip(self._constraints, self._body_relations)

    def relations(self) -> frozenset[str]:
        """All relation names mentioned anywhere in the constraint set."""
        names: set[str] = set()
        for constraint in self._constraints:
            names.update(constraint.relations())
        return frozenset(names)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __contains__(self, constraint: object) -> bool:
        return constraint in self._constraints

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ConstraintSet({len(self._constraints)} constraints)"


# ---------------------------------------------------------------------------
# Convenience constructors for the common constraint shapes
# ---------------------------------------------------------------------------

def key_constraint(relation: str, arity: int, key_positions: Sequence[int],
                   name: str | None = None) -> EGD:
    """Build the EGDs stating that ``key_positions`` form a key of ``relation``.

    Two tuples agreeing on the key positions must agree on every other
    position; this returns a single EGD with one equality per non-key position.
    """
    xs = [Variable(f"k{i}") for i in range(arity)]
    ys = [Variable(f"k{i}") if i in key_positions else Variable(f"o{i}") for i in range(arity)]
    equalities = [
        (xs[i], ys[i]) for i in range(arity) if i not in key_positions
    ]
    if not equalities:
        raise PivotModelError("key covering all positions induces no equalities")
    return EGD(
        [Atom(relation, xs), Atom(relation, ys)],
        equalities,
        name=name or f"key_{relation}",
    )


def functional_dependency(relation: str, arity: int, determinant: Sequence[int],
                          dependent: Sequence[int], name: str | None = None) -> EGD:
    """Build the EGD for the functional dependency determinant → dependent."""
    xs = [Variable(f"f{i}") for i in range(arity)]
    ys = [Variable(f"f{i}") if i in determinant else Variable(f"g{i}") for i in range(arity)]
    equalities = [(xs[i], ys[i]) for i in dependent if i not in determinant]
    if not equalities:
        raise PivotModelError("functional dependency with no dependent positions")
    return EGD(
        [Atom(relation, xs), Atom(relation, ys)],
        equalities,
        name=name or f"fd_{relation}",
    )


def inclusion_dependency(source: str, source_arity: int, source_positions: Sequence[int],
                         target: str, target_arity: int, target_positions: Sequence[int],
                         name: str | None = None) -> TGD:
    """Build the TGD for the inclusion dependency source[positions] ⊆ target[positions]."""
    if len(source_positions) != len(target_positions):
        raise PivotModelError("inclusion dependency position lists must have the same length")
    xs = [Variable(f"s{i}") for i in range(source_arity)]
    ys: list[Variable] = []
    shared = {sp: xs[sp] for sp in source_positions}
    mapping = dict(zip(target_positions, source_positions))
    for i in range(target_arity):
        if i in mapping:
            ys.append(shared[mapping[i]])
        else:
            ys.append(Variable(f"t{i}"))
    return TGD([Atom(source, xs)], [Atom(target, ys)], name=name or f"ind_{source}_{target}")
