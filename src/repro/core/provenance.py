"""Provenance formulas for the provenance-aware chase (PACB).

The provenance-aware Chase & Backchase [Ileana et al., SIGMOD 2014] annotates
every fact derived during the chase with a *provenance formula* recording
which view atoms the fact depends on.  After the chase, matching the original
query against the chased instance and reading off the provenance of the
matched facts directly yields the (minimal) rewritings — avoiding the
exponential sub-query enumeration of the classical backchase.

We represent provenance formulas in disjunctive normal form (DNF): a set of
*monomials*, each monomial being a set of provenance variable identifiers
(one identifier per view atom of the universal plan).  The two operations are:

* ``disjunction`` (the same fact derived in several ways),
* ``conjunction`` (a fact derived from several premises).

Both apply *absorption* — a monomial that is a superset of another is dropped
— so formulas stay minimal, which is exactly what makes the read-off
rewritings minimal.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["ProvenanceFormula", "TRUE", "EMPTY"]

Monomial = frozenset[int]


class ProvenanceFormula:
    """An immutable positive Boolean formula in minimal DNF.

    The formula over provenance variables (integers) is stored as a frozenset
    of monomials (frozensets of ints).  The empty formula (no monomials)
    denotes *false* (unreachable); the formula containing the empty monomial
    denotes *true* (derivable with no view atoms).
    """

    __slots__ = ("monomials",)

    def __init__(self, monomials: Iterable[Iterable[int]] = ()) -> None:
        absorbed = _absorb(frozenset(frozenset(m) for m in monomials))
        object.__setattr__(self, "monomials", absorbed)

    def __setattr__(self, key: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("ProvenanceFormula is immutable")

    # -- constructors ----------------------------------------------------------
    @classmethod
    def variable(cls, identifier: int) -> "ProvenanceFormula":
        """The formula consisting of a single provenance variable."""
        return cls([frozenset({identifier})])

    @classmethod
    def true(cls) -> "ProvenanceFormula":
        """The always-true formula (empty monomial)."""
        return cls([frozenset()])

    @classmethod
    def false(cls) -> "ProvenanceFormula":
        """The always-false formula (no monomials)."""
        return cls([])

    # -- predicates ------------------------------------------------------------
    def is_false(self) -> bool:
        """True when the formula has no monomials."""
        return not self.monomials

    def is_true(self) -> bool:
        """True when the formula contains the empty monomial."""
        return frozenset() in self.monomials

    # -- operations --------------------------------------------------------------
    def disjunction(self, other: "ProvenanceFormula") -> "ProvenanceFormula":
        """OR of two formulas (fact derivable either way)."""
        return ProvenanceFormula(self.monomials | other.monomials)

    def conjunction(self, other: "ProvenanceFormula") -> "ProvenanceFormula":
        """AND of two formulas (fact requires both derivations)."""
        if self.is_false() or other.is_false():
            return ProvenanceFormula.false()
        product = {
            left | right for left in self.monomials for right in other.monomials
        }
        return ProvenanceFormula(product)

    def variables(self) -> frozenset[int]:
        """All provenance variables mentioned in the formula."""
        result: set[int] = set()
        for monomial in self.monomials:
            result.update(monomial)
        return frozenset(result)

    def minimal_monomials(self) -> frozenset[Monomial]:
        """The monomials (already absorption-minimal)."""
        return self.monomials

    # -- protocol ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, ProvenanceFormula) and self.monomials == other.monomials

    def __hash__(self) -> int:
        return hash(self.monomials)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self.is_false():
            return "FALSE"
        if self.is_true():
            return "TRUE"
        parts = [
            "(" + " & ".join(f"p{v}" for v in sorted(m)) + ")" for m in sorted(
                self.monomials, key=lambda m: (len(m), sorted(m)))
        ]
        return " | ".join(parts)


def _absorb(monomials: frozenset[Monomial]) -> frozenset[Monomial]:
    """Drop monomials that are supersets of other monomials (absorption law)."""
    kept: list[Monomial] = []
    for monomial in sorted(monomials, key=len):
        if not any(existing <= monomial for existing in kept):
            kept.append(monomial)
    return frozenset(kept)


TRUE = ProvenanceFormula.true()
EMPTY = ProvenanceFormula.false()
