"""Select/project/join delta rules for conjunctive-query view maintenance.

A materialized fragment is defined by a conjunctive query over base
relations.  When a base relation changes, the fragment can be kept current
without re-evaluating the query: the classical delta rules express the
change of the view as a (much smaller) join of the *delta* with the old and
new states of the other body atoms,

    ΔQ = Σ_i  eval( new_1, ..., new_{i-1}, ΔR_i, old_{i+1}, ..., old_n )

where atom *i* ranges over the body occurrences of a changed relation.
Selections (constants / repeated variables in an atom) and projections (the
head) distribute through unchanged, and an update is a delete plus an
insert.  Everything here is **bag** semantics over *signed multisets* —
:class:`collections.Counter` objects mapping row tuples to signed counts —
so duplicate rows and deletions fall out of the same arithmetic: positive
counts are rows to insert, negative counts rows to delete.

The module is pure (no stores, no catalog): relations are named bags of
positionally-ordered tuples, which is what makes the rules unit-testable as
algebraic properties (see ``tests/test_delta_rules.py``).  The maintenance
engine in :mod:`repro.catalog.maintenance` layers column names, storage
layouts and the delta log on top.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping, Sequence

from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable
from repro.errors import DeltaError

__all__ = [
    "Delta",
    "bag",
    "bag_difference",
    "apply_delta_to_bag",
    "evaluate",
    "delta_evaluate",
    "BagIndex",
]

Delta = Counter
"""A signed multiset of row tuples: +n means insert n copies, -n delete n."""


def bag(rows: Iterable[tuple]) -> Counter:
    """The bag (multiset) of ``rows`` as a Counter."""
    return Counter(rows)


def bag_difference(after: Mapping[tuple, int], before: Mapping[tuple, int]) -> Counter:
    """The signed delta turning ``before`` into ``after`` (after − before)."""
    delta: Counter = Counter(after)
    delta.subtract(before)
    return Counter({row: count for row, count in delta.items() if count})


def apply_delta_to_bag(state: Counter, delta: Mapping[tuple, int]) -> None:
    """Apply a signed delta to ``state`` in place (strict bag semantics).

    Driving any multiplicity below zero raises :class:`DeltaError`: a
    negative count means the delta deletes a row the state never held, i.e.
    the two sides have diverged.
    """
    for row, count in delta.items():
        updated = state[row] + count
        if updated < 0:
            raise DeltaError(
                f"delta drives multiplicity of {row!r} to {updated} (< 0); "
                "state and delta have diverged"
            )
        if updated:
            state[row] = updated
        else:
            del state[row]


class BagIndex:
    """Hash indexes over one bag, keyed by column-position subsets.

    ``probe(positions, key)`` returns the ``(row, count)`` pairs whose values
    at ``positions`` equal ``key``; the empty position tuple returns the whole
    bag.  Indexes are built lazily per position subset and updated in place by
    :meth:`update`, so repeated small deltas against a large base relation
    stay O(|Δ|) instead of O(|relation|).
    """

    __slots__ = ("_bag", "_indexes")

    def __init__(self, rows: Counter | None = None) -> None:
        self._bag: Counter = rows if rows is not None else Counter()
        self._indexes: dict[tuple[int, ...], dict[tuple, Counter]] = {}

    @property
    def rows(self) -> Counter:
        """The underlying bag (do not mutate directly; use :meth:`update`)."""
        return self._bag

    def _index_for(self, positions: tuple[int, ...]) -> dict[tuple, Counter]:
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row, count in self._bag.items():
                key = tuple(row[p] for p in positions)
                index.setdefault(key, Counter())[row] = count
            self._indexes[positions] = index
        return index

    def probe(self, positions: tuple[int, ...], key: tuple) -> Iterable[tuple[tuple, int]]:
        """``(row, signed count)`` pairs matching ``key`` at ``positions``."""
        if not positions:
            return self._bag.items()
        bucket = self._index_for(positions).get(key)
        return bucket.items() if bucket is not None else ()

    def update(self, delta: Mapping[tuple, int]) -> None:
        """Apply a signed delta to the bag and to every built index (strict)."""
        apply_delta_to_bag(self._bag, delta)
        for positions, index in self._indexes.items():
            for row, count in delta.items():
                key = tuple(row[p] for p in positions)
                bucket = index.setdefault(key, Counter())
                updated = bucket[row] + count
                if updated:
                    bucket[row] = updated
                else:
                    del bucket[row]
                if not bucket:
                    del index[key]


def _join(
    atoms: Sequence[tuple[object, BagIndex]],
    head_terms: Sequence[object],
) -> Counter:
    """Bag-join ``atoms`` left to right and project onto ``head_terms``.

    Each atom's terms bind positionally against its bag's row tuples;
    constants and already-bound variables become hash-probe keys (the
    selection), fresh variables extend the binding, and multiplicities
    multiply through the join.  Signed counts flow through unchanged, which
    is what lets the same evaluator serve full recomputation (all-positive
    bags) and delta propagation (one signed factor).
    """
    partial: list[tuple[dict[Variable, object], int]] = [({}, 1)]
    for atom, index in atoms:
        grown: list[tuple[dict[Variable, object], int]] = []
        terms = atom.terms
        for binding, count in partial:
            positions: list[int] = []
            key: list[object] = []
            for position, term in enumerate(terms):
                if isinstance(term, Constant):
                    positions.append(position)
                    key.append(term.value)
                elif term in binding:
                    positions.append(position)
                    key.append(binding[term])
            for row, row_count in index.probe(tuple(positions), tuple(key)):
                extended = dict(binding)
                ok = True
                for position, term in enumerate(terms):
                    if isinstance(term, Constant):
                        continue
                    bound = extended.get(term, _UNBOUND)
                    if bound is _UNBOUND:
                        extended[term] = row[position]
                    elif bound != row[position]:
                        # A repeated variable inside the atom (self-equality
                        # selection) that the probe key could not cover.
                        ok = False
                        break
                if ok:
                    grown.append((extended, count * row_count))
        partial = grown
        if not partial:
            break
    result: Counter = Counter()
    for binding, count in partial:
        if not count:
            continue
        row = tuple(
            term.value if isinstance(term, Constant) else binding[term]
            for term in head_terms
        )
        result[row] += count
    return Counter({row: count for row, count in result.items() if count})


class _Unbound:
    """Sentinel distinguishing "unbound" from "bound to None"."""


_UNBOUND = _Unbound()


def _as_index(rows: Counter | BagIndex) -> BagIndex:
    return rows if isinstance(rows, BagIndex) else BagIndex(rows)


def evaluate(
    query: ConjunctiveQuery, relations: Mapping[str, Counter | BagIndex]
) -> Counter:
    """Evaluate ``query`` over named bags, returning the result bag.

    Every body relation must be present in ``relations`` (an absent relation
    raises :class:`DeltaError` rather than silently evaluating to empty).
    """
    plan = []
    for atom in query.body:
        rows = relations.get(atom.relation)
        if rows is None:
            raise DeltaError(f"no bag provided for relation {atom.relation!r}")
        plan.append((atom, _as_index(rows)))
    return _join(plan, query.head_terms)


def delta_evaluate(
    query: ConjunctiveQuery,
    old: Mapping[str, Counter | BagIndex],
    deltas: Mapping[str, Mapping[tuple, int]],
) -> Counter:
    """The signed delta of ``query``'s result under ``deltas`` to its inputs.

    ``old`` holds the pre-delta state of every body relation; ``deltas`` the
    signed change of each changed relation.  Implements the per-occurrence
    sum above: occurrence *i* of a changed relation contributes the join of
    the *new* states of atoms before it, its own delta, and the *old* states
    of atoms after it — which handles self-joins exactly.
    """
    new_indexes: dict[str, BagIndex] = {}

    def new_index(relation: str) -> BagIndex:
        index = new_indexes.get(relation)
        if index is None:
            rows = old.get(relation)
            if rows is None:
                raise DeltaError(f"no bag provided for relation {relation!r}")
            state = Counter(rows.rows if isinstance(rows, BagIndex) else rows)
            delta = deltas.get(relation)
            if delta:
                apply_delta_to_bag(state, delta)
            index = BagIndex(state)
            new_indexes[relation] = index
        return index

    total: Counter = Counter()
    for i, atom in enumerate(query.body):
        delta = deltas.get(atom.relation)
        if not delta:
            continue
        plan: list[tuple[object, BagIndex]] = []
        # The delta factor leads: it is by far the smallest bag, so binding
        # its variables first turns every other atom into an indexed probe.
        plan.append((atom, BagIndex(Counter(delta))))
        for j, other in enumerate(query.body):
            if j == i:
                continue
            if j < i:
                plan.append((other, new_index(other.relation)))
            else:
                rows = old.get(other.relation)
                if rows is None:
                    raise DeltaError(f"no bag provided for relation {other.relation!r}")
                plan.append((other, _as_index(rows)))
        partial = _join(plan, query.head_terms)
        total.update(partial)
    return Counter({row: count for row, count in total.items() if count})
