"""Classical Chase & Backchase (C&B) — the baseline rewriting algorithm.

The classical backchase enumerates sub-queries of the universal plan in
increasing size and keeps those that (a) only use view (fragment) relations,
(b) still expose the query's head variables and (c) are equivalent to the
original query under the constraints.  Equivalence is checked with a fresh
chase per candidate, which is what makes the classical algorithm exponential
in the number of candidate view atoms — the very cost that the
provenance-aware variant (:mod:`repro.core.pacb`) avoids and that experiment
E4 measures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.chase import ChaseConfig
from repro.core.constraints import Constraint, ConstraintSet
from repro.core.containment import is_equivalent_under_constraints
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Atom, Variable
from repro.core.universal_plan import UniversalPlan, chase_query, thaw_atoms, thaw_term
from repro.core.views import ViewDefinition, combined_constraint_set
from repro.errors import RewritingError

__all__ = ["BackchaseStatistics", "classical_backchase", "candidate_to_query"]


@dataclass(slots=True)
class BackchaseStatistics:
    """Counters describing the work performed by a backchase run."""

    candidates_considered: int = 0
    equivalence_checks: int = 0
    rewritings_found: int = 0
    view_atoms_in_plan: int = 0
    candidates_pruned_by_cost: int = 0
    notes: list[str] = field(default_factory=list)


def candidate_to_query(
    query: ConjunctiveQuery,
    candidate_facts: Sequence[Atom],
    plan: UniversalPlan,
) -> ConjunctiveQuery | None:
    """Turn a set of frozen view facts into a candidate rewriting query.

    Returns None when the candidate cannot expose all head variables of the
    original query (such a candidate can never be an equivalent rewriting).
    """
    thawing = dict(plan.thawing)
    body = thaw_atoms(candidate_facts, thawing)
    head_terms = [thaw_term(t, thawing) for t in plan.frozen_head]
    body_variables: set[Variable] = set()
    for atom in body:
        body_variables.update(atom.variable_set())
    for term in head_terms:
        if isinstance(term, Variable) and term not in body_variables:
            return None
    return ConjunctiveQuery(
        query.head_relation, head_terms, body, name=f"{query.name}_rewriting"
    )


def classical_backchase(
    query: ConjunctiveQuery,
    views: Sequence[ViewDefinition],
    schema_constraints: ConstraintSet | Iterable[Constraint] | None = None,
    config: ChaseConfig | None = None,
    max_rewritings: int | None = None,
    max_candidate_size: int | None = None,
    cost_bound: "object | None" = None,
) -> tuple[list[ConjunctiveQuery], BackchaseStatistics]:
    """Find view-based rewritings of ``query`` by exhaustive backchase.

    Parameters
    ----------
    query:
        The application query over the source (pivot) schema.
    views:
        The fragment definitions available for rewriting.
    schema_constraints:
        Data-model constraints (key/FD/structural TGDs and EGDs).
    max_rewritings:
        Stop after this many rewritings have been found.
    max_candidate_size:
        Only consider candidate bodies of at most this many view atoms
        (defaults to the number of view atoms in the universal plan).

    Returns the list of minimal rewritings (as CQs over view relations) and
    the search statistics.
    """
    if not views:
        raise RewritingError("classical backchase needs at least one view")
    statistics = BackchaseStatistics()

    # Preserve the caller's ConstraintSet identity (memo tokens, see pacb).
    if isinstance(schema_constraints, ConstraintSet):
        schema = schema_constraints
    else:
        schema = ConstraintSet(schema_constraints or ())
    views = tuple(views)
    forward = combined_constraint_set(views, schema, direction="forward")
    all_constraints = combined_constraint_set(views, schema, direction="both")

    plan = chase_query(query, forward, config=config)
    view_names = {view.name for view in views}
    view_facts = plan.view_facts(view_names)
    statistics.view_atoms_in_plan = len(view_facts)
    if not view_facts:
        return [], statistics

    limit = max_candidate_size or len(view_facts)
    rewritings: list[ConjunctiveQuery] = []
    found_sets: list[frozenset[Atom]] = []
    best_estimate: float | None = None

    for size in range(1, limit + 1):
        for combination in itertools.combinations(view_facts, size):
            combination_set = frozenset(combination)
            # Skip supersets of already-found rewritings: they cannot be minimal.
            if any(found <= combination_set for found in found_sets):
                continue
            if cost_bound is not None and best_estimate is not None:
                # Admissible pruning, as in pacb_rewrite: a candidate whose
                # cost floor already exceeds the best accepted estimate cannot
                # become the cheapest rewriting.
                floor = cost_bound.lower_bound(a.relation for a in combination)
                if floor >= best_estimate:
                    statistics.candidates_pruned_by_cost += 1
                    continue
            statistics.candidates_considered += 1
            candidate = candidate_to_query(query, combination, plan)
            if candidate is None:
                continue
            statistics.equivalence_checks += 1
            if is_equivalent_under_constraints(candidate, query, all_constraints, config=config):
                rewritings.append(candidate)
                found_sets.append(combination_set)
                statistics.rewritings_found += 1
                if cost_bound is not None:
                    estimate = cost_bound.estimate(a.relation for a in combination)
                    if best_estimate is None or estimate < best_estimate:
                        best_estimate = estimate
                if max_rewritings is not None and len(rewritings) >= max_rewritings:
                    return rewritings, statistics
    return rewritings, statistics
