"""View (fragment) definitions and their compilation to constraints.

In ESTOCADA every stored fragment is a *materialized view* over one or more
application datasets (local-as-view).  A :class:`ViewDefinition` pairs a view
name with the conjunctive query defining it over the source (pivot) schema,
plus an optional access pattern describing how the underlying store lets the
view be accessed.

For the chase & backchase, each view contributes two TGDs:

* the **forward** constraint ``body(V) → V(head)`` — whenever the source
  pattern holds, the corresponding view tuple exists; used while chasing the
  query into the universal plan, where view atoms appear;
* the **backward** constraint ``V(head) → ∃ body(V)`` — every view tuple is
  witnessed by source tuples; used by the backchase to check that a candidate
  rewriting over the views is equivalent to the original query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.binding_patterns import AccessPattern
from repro.core.constraints import TGD, ConstraintSet
from repro.core.memo import LRUMemo, memo_enabled
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Atom
from repro.errors import PivotModelError

__all__ = [
    "ViewDefinition",
    "view_constraints",
    "views_constraint_set",
    "combined_constraint_set",
]


@dataclass(frozen=True, slots=True)
class ViewDefinition:
    """A named materialized view (fragment) over the pivot schema.

    Attributes
    ----------
    name:
        The view's relation name in rewritings (unique per catalog).
    definition:
        The conjunctive query over source relations defining the view's
        contents.  The query's head relation is ignored; ``name`` is used.
    access_pattern:
        Optional binding pattern restricting how the view can be accessed
        (e.g. ``"io"`` for a key-value collection keyed on the first column).
    store:
        Optional identifier of the store hosting the fragment (used by the
        translation layer; the rewriting engine itself does not need it).
    """

    name: str
    definition: ConjunctiveQuery
    access_pattern: AccessPattern | None = None
    store: str | None = None
    column_names: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise PivotModelError("view name must be non-empty")
        if self.access_pattern is not None and (
            self.access_pattern.arity != len(self.definition.head_terms)
        ):
            raise PivotModelError(
                f"access pattern of view {self.name!r} has arity "
                f"{self.access_pattern.arity}, head has {len(self.definition.head_terms)}"
            )
        if self.column_names is not None and len(self.column_names) != len(
            self.definition.head_terms
        ):
            raise PivotModelError(
                f"view {self.name!r} declares {len(self.column_names)} column names "
                f"but exposes {len(self.definition.head_terms)} columns"
            )

    @property
    def arity(self) -> int:
        """Number of columns exposed by the view."""
        return len(self.definition.head_terms)

    def head_atom(self) -> Atom:
        """The view atom ``name(head terms)`` used in constraints and rewritings."""
        return Atom(self.name, self.definition.head_terms)

    def forward_constraint(self) -> TGD:
        """``body(V) → V(head)``: source tuples imply view tuples."""
        return TGD(
            self.definition.body,
            [self.head_atom()],
            name=f"{self.name}_fwd",
        )

    def backward_constraint(self) -> TGD:
        """``V(head) → body(V)``: view tuples are witnessed in the sources."""
        return TGD(
            [self.head_atom()],
            self.definition.body,
            name=f"{self.name}_bwd",
        )


def view_constraints(view: ViewDefinition) -> tuple[TGD, TGD]:
    """The (forward, backward) constraint pair of a single view."""
    return view.forward_constraint(), view.backward_constraint()


def views_constraint_set(
    views: Iterable[ViewDefinition],
    direction: str = "both",
) -> ConstraintSet:
    """Bundle the constraints of several views.

    ``direction`` is ``"forward"``, ``"backward"`` or ``"both"``.
    """
    if direction not in {"forward", "backward", "both"}:
        raise PivotModelError(f"unknown direction {direction!r}")
    constraints = ConstraintSet()
    for view in views:
        if direction in {"forward", "both"}:
            constraints.add(view.forward_constraint())
        if direction in {"backward", "both"}:
            constraints.add(view.backward_constraint())
    return constraints


_combined_memo = LRUMemo("views_constraint_union", max_entries=512)


def combined_constraint_set(
    views: Iterable[ViewDefinition],
    schema: ConstraintSet,
    direction: str = "both",
) -> ConstraintSet:
    """``views_constraint_set(views, direction) ∪ schema``, memoized.

    The chase and containment memos key on each :class:`ConstraintSet`'s
    mutation token, never its content, so a freshly built (but identical)
    constraint set would miss every earlier entry.  Returning the *same*
    object for repeated (views, schema, direction) combinations keeps those
    tokens stable across rewrites — this is what makes the memos effective
    across queries, not just within one backchase run.  Callers must treat
    the returned set as immutable.
    """
    views = tuple(views)
    if not memo_enabled():
        return views_constraint_set(views, direction).union(schema)
    key = (views, direction, schema.token)
    return _combined_memo.get_or_compute(
        key, lambda: views_constraint_set(views, direction).union(schema)
    )
