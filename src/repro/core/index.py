"""Relation-signature index over views and constraints (rewrite-at-scale).

With catalogs of thousands of registered fragments, handing every view to
:func:`repro.core.pacb.pacb_rewrite` makes the rewrite itself the bottleneck:
the forward/backward constraint sets grow linearly with the catalog and the
chase scans all of them each round even though a query over three relations
can only ever use a handful of views.

:class:`RewriteIndex` fixes the selection step.  It maintains

* an inverted map ``relation -> views whose definition body mentions it``,
* a reachability graph whose edges are the schema TGDs (``body relations ->
  head relations``) and the views' forward constraints (``body relations ->
  view name``),

and answers ``candidate_views(query relations)`` by computing the TGD
*reachability closure* of the query's relations and returning exactly the
views whose definition bodies fall inside it.  The closure is sound for
candidate selection: a view atom can only ever appear in the universal plan
if every relation of the view's body is derivable from the query's relations
through forward constraints, and EGDs never introduce new relations.

Indexed candidate selection is on by default; ``REPRO_REWRITE_INDEX=0``
restores the unindexed all-views path (the escape hatch also disables the
inverted constraint dispatch inside :mod:`repro.core.chase`).
"""

from __future__ import annotations

import itertools
import os
from typing import Iterable, Iterator

from repro.core.constraints import TGD, Constraint
from repro.core.views import ViewDefinition

__all__ = ["RewriteIndex", "index_enabled"]

_CLOSURE_CACHE_LIMIT = 1024


def index_enabled() -> bool:
    """True unless ``REPRO_REWRITE_INDEX=0`` disables signature indexing."""
    return os.environ.get("REPRO_REWRITE_INDEX", "1") != "0"


class RewriteIndex:
    """Inverted relation-signature index over view definitions and TGDs.

    The index is incremental: views and constraints can be added or removed
    one at a time (fragment registration/drop), and closure results are cached
    until the next mutation.
    """

    __slots__ = (
        "_views",
        "_views_by_relation",
        "_edges",
        "_edges_by_relation",
        "_edges_by_view",
        "_seq",
        "_edge_ids",
        "_closure_cache",
    )

    def __init__(
        self,
        views: Iterable[ViewDefinition] = (),
        constraints: Iterable[Constraint] = (),
    ) -> None:
        # view name -> (registration sequence, definition)
        self._views: dict[str, tuple[int, ViewDefinition]] = {}
        self._views_by_relation: dict[str, set[str]] = {}
        # edge id -> (body relations, head relations)
        self._edges: dict[int, tuple[frozenset[str], frozenset[str]]] = {}
        self._edges_by_relation: dict[str, set[int]] = {}
        self._edges_by_view: dict[str, int] = {}
        self._seq = itertools.count()
        self._edge_ids = itertools.count()
        self._closure_cache: dict[frozenset[str], frozenset[str]] = {}
        for view in views:
            self.add_view(view)
        self.add_constraints(constraints)

    # -- mutation ------------------------------------------------------------
    def add_view(self, view: ViewDefinition) -> None:
        """Index a fragment definition (replacing any same-named one)."""
        if view.name in self._views:
            self.remove_view(view.name)
        body_relations = view.definition.relations()
        self._views[view.name] = (next(self._seq), view)
        for relation in body_relations:
            self._views_by_relation.setdefault(relation, set()).add(view.name)
        self._edges_by_view[view.name] = self._add_edge(
            body_relations, frozenset((view.name,))
        )
        self._closure_cache.clear()

    def remove_view(self, name: str) -> ViewDefinition | None:
        """Drop a view from the index; returns its definition if present."""
        entry = self._views.pop(name, None)
        if entry is None:
            return None
        _, view = entry
        for relation in view.definition.relations():
            names = self._views_by_relation.get(relation)
            if names is not None:
                names.discard(name)
                if not names:
                    del self._views_by_relation[relation]
        edge_id = self._edges_by_view.pop(name, None)
        if edge_id is not None:
            self._remove_edge(edge_id)
        self._closure_cache.clear()
        return view

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        """Index schema TGDs as reachability edges (EGDs add no relations)."""
        added = False
        for constraint in constraints:
            if isinstance(constraint, TGD):
                body = frozenset(a.relation for a in constraint.body)
                head = frozenset(a.relation for a in constraint.head)
                self._add_edge(body, head)
                added = True
        if added:
            self._closure_cache.clear()

    def _add_edge(self, body: frozenset[str], head: frozenset[str]) -> int:
        edge_id = next(self._edge_ids)
        self._edges[edge_id] = (body, head)
        for relation in body:
            self._edges_by_relation.setdefault(relation, set()).add(edge_id)
        return edge_id

    def _remove_edge(self, edge_id: int) -> None:
        edge = self._edges.pop(edge_id, None)
        if edge is None:
            return
        for relation in edge[0]:
            ids = self._edges_by_relation.get(relation)
            if ids is not None:
                ids.discard(edge_id)
                if not ids:
                    del self._edges_by_relation[relation]

    # -- queries -------------------------------------------------------------
    def closure(self, relations: Iterable[str]) -> frozenset[str]:
        """TGD-reachability closure of ``relations``.

        A TGD edge fires once *all* of its body relations are available; the
        relations of its head (for views: the view name) then become
        available.  The result is cached until the index next mutates.
        """
        start = frozenset(relations)
        cached = self._closure_cache.get(start)
        if cached is not None:
            return cached
        available: set[str] = set(start)
        queue = list(start)
        while queue:
            relation = queue.pop()
            for edge_id in self._edges_by_relation.get(relation, ()):
                body, head = self._edges[edge_id]
                if body <= available:
                    fresh = head - available
                    if fresh:
                        available.update(fresh)
                        queue.extend(fresh)
        result = frozenset(available)
        if len(self._closure_cache) >= _CLOSURE_CACHE_LIMIT:
            self._closure_cache.clear()
        self._closure_cache[start] = result
        return result

    def candidate_views(self, relations: Iterable[str]) -> list[ViewDefinition]:
        """Views usable by a query over ``relations``, in registration order.

        A view qualifies when every relation of its definition body lies in
        the reachability closure of the query's relations.  The scan touches
        only views indexed under closure relations, never the whole catalog.
        """
        reachable = self.closure(relations)
        names: set[str] = set()
        for relation in reachable:
            names.update(self._views_by_relation.get(relation, ()))
        selected: list[tuple[int, ViewDefinition]] = []
        for name in names:
            seq, view = self._views[name]
            if view.definition.relations() <= reachable:
                selected.append((seq, view))
        selected.sort(key=lambda item: item[0])
        return [view for _, view in selected]

    def views_over(self, relation: str) -> frozenset[str]:
        """Names of views whose definition body mentions ``relation``."""
        return frozenset(self._views_by_relation.get(relation, ()))

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: object) -> bool:
        return name in self._views

    def __iter__(self) -> Iterator[ViewDefinition]:
        return iter(view for _, view in self._views.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RewriteIndex({len(self._views)} views, {len(self._edges)} edges)"
