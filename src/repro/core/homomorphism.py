"""Homomorphism search over sets of atoms.

A homomorphism from a conjunction of atoms ``P`` into an instance ``I`` is a
substitution mapping the variables of ``P`` such that every atom of ``P``
lands on an atom of ``I``.  Homomorphisms underlie every algorithm in the
rewriting engine:

* the chase looks for *triggers* (homomorphisms from a constraint body into
  the current instance),
* CQ containment checks for a homomorphism from one query's body into the
  canonical instance of the other,
* the backchase checks candidate sub-queries for equivalence via the chase.

The implementation is a backtracking search with two standard optimisations:

* atoms of the instance are indexed by relation name (and by
  (relation, position, constant) for constant positions), so candidate target
  atoms are found without scanning the whole instance;
* pattern atoms are ordered most-constrained-first (fewest candidate targets,
  most already-bound variables), which prunes the search tree early.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.core.terms import Atom, Constant, Substitution, Term, Variable

__all__ = ["InstanceIndex", "find_homomorphism", "iterate_homomorphisms", "count_homomorphisms"]


class InstanceIndex:
    """Index of a set of facts, by relation and by constant positions.

    The index is incrementally updatable: the chase adds facts as it derives
    them and the index keeps lookup structures in sync.
    """

    __slots__ = ("_facts", "_by_relation", "_by_rel_pos_value")

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._facts: set[Atom] = set()
        self._by_relation: dict[str, list[Atom]] = {}
        self._by_rel_pos_value: dict[tuple[str, int, object], list[Atom]] = {}
        for fact in facts:
            self.add(fact)

    # -- updates -------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        """Add a fact; returns False when it was already present."""
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._by_relation.setdefault(fact.relation, []).append(fact)
        for position, term in enumerate(fact.terms):
            if isinstance(term, Constant):
                key = (fact.relation, position, term.value)
                self._by_rel_pos_value.setdefault(key, []).append(fact)
        return True

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Add several facts; returns how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    # -- lookups -------------------------------------------------------------
    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def facts(self) -> frozenset[Atom]:
        """All facts as a frozen set."""
        return frozenset(self._facts)

    def by_relation(self, relation: str) -> Sequence[Atom]:
        """Facts over ``relation``."""
        return self._by_relation.get(relation, ())

    def candidates(self, pattern: Atom, substitution: Substitution) -> Sequence[Atom]:
        """Facts that could match ``pattern`` under the current partial substitution.

        Uses the most selective available index: if any position of the
        pattern is a constant (or a variable already bound to a constant), the
        (relation, position, value) index is used; otherwise all facts of the
        relation are returned.
        """
        best: Sequence[Atom] | None = None
        for position, term in enumerate(pattern.terms):
            resolved = substitution.resolve(term)
            if isinstance(resolved, Constant):
                key = (pattern.relation, position, resolved.value)
                bucket = self._by_rel_pos_value.get(key, ())
                if best is None or len(bucket) < len(best):
                    best = bucket
                    if not best:
                        return ()
        if best is not None:
            return best
        return self._by_relation.get(pattern.relation, ())


def _match_atom(pattern: Atom, fact: Atom, substitution: Substitution) -> Substitution | None:
    """Try to extend ``substitution`` so that ``pattern`` maps onto ``fact``.

    Returns the extended substitution, or None when the atoms are incompatible.
    The input substitution is not modified.
    """
    if pattern.relation != fact.relation or pattern.arity != fact.arity:
        return None
    bindings: dict[Variable, Term] = {}
    for pattern_term, fact_term in zip(pattern.terms, fact.terms):
        resolved = substitution.resolve(pattern_term)
        if isinstance(resolved, Variable):
            # Still unbound (or bound within this atom): bind it.
            pending = bindings.get(resolved)
            if pending is None:
                bindings[resolved] = fact_term
            elif pending != fact_term:
                return None
        else:
            if resolved != fact_term:
                return None
    result = substitution
    for variable, term in bindings.items():
        result = result.bind(variable, term)
    return result


def _order_pattern(pattern: Sequence[Atom], index: InstanceIndex) -> list[Atom]:
    """Order pattern atoms most-constrained-first.

    A greedy ordering: repeatedly pick the atom with the fewest candidate
    facts, preferring atoms that share variables with already-placed atoms.
    """
    remaining = list(pattern)
    ordered: list[Atom] = []
    bound: set[Variable] = set()
    empty_substitution = Substitution.empty()
    while remaining:
        def score(atom: Atom) -> tuple[int, int]:
            shared = len(atom.variable_set() & bound)
            fanout = len(index.candidates(atom, empty_substitution))
            # Fewer candidates first; among equals, more shared variables first.
            return (fanout, -shared)

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variable_set())
    return ordered


def iterate_homomorphisms(
    pattern: Sequence[Atom],
    instance: InstanceIndex | Iterable[Atom],
    seed: Substitution | None = None,
    limit: int | None = None,
) -> Iterator[Substitution]:
    """Yield homomorphisms from ``pattern`` into ``instance``.

    Parameters
    ----------
    pattern:
        Atoms (possibly containing variables) to map.
    instance:
        The target facts, as an :class:`InstanceIndex` or any iterable of
        ground atoms (an index is built on the fly in the latter case).
    seed:
        A partial substitution that every returned homomorphism must extend
        (used by the chase to fix the trigger found on the constraint body).
    limit:
        If given, stop after yielding this many homomorphisms.
    """
    if not isinstance(instance, InstanceIndex):
        instance = InstanceIndex(instance)
    if not pattern:
        yield seed or Substitution.empty()
        return

    ordered = _order_pattern(pattern, instance)
    produced = 0

    def search(position: int, substitution: Substitution) -> Iterator[Substitution]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if position == len(ordered):
            produced += 1
            yield substitution
            return
        atom = ordered[position]
        for fact in instance.candidates(atom, substitution):
            extended = _match_atom(atom, fact, substitution)
            if extended is None:
                continue
            yield from search(position + 1, extended)
            if limit is not None and produced >= limit:
                return

    yield from search(0, seed or Substitution.empty())


def find_homomorphism(
    pattern: Sequence[Atom],
    instance: InstanceIndex | Iterable[Atom],
    seed: Substitution | None = None,
    requirement: Callable[[Substitution], bool] | None = None,
) -> Substitution | None:
    """Return one homomorphism from ``pattern`` into ``instance`` or None.

    ``requirement`` optionally filters homomorphisms (e.g. "head variables must
    map to the expected values" for containment checks).
    """
    for homomorphism in iterate_homomorphisms(pattern, instance, seed=seed):
        if requirement is None or requirement(homomorphism):
            return homomorphism
    return None


def count_homomorphisms(
    pattern: Sequence[Atom],
    instance: InstanceIndex | Iterable[Atom],
    limit: int | None = None,
) -> int:
    """Count homomorphisms from ``pattern`` into ``instance`` (up to ``limit``)."""
    count = 0
    for _ in iterate_homomorphisms(pattern, instance, limit=limit):
        count += 1
    return count
