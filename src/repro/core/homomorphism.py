"""Homomorphism search over sets of atoms.

A homomorphism from a conjunction of atoms ``P`` into an instance ``I`` is a
substitution mapping the variables of ``P`` such that every atom of ``P``
lands on an atom of ``I``.  Homomorphisms underlie every algorithm in the
rewriting engine:

* the chase looks for *triggers* (homomorphisms from a constraint body into
  the current instance),
* CQ containment checks for a homomorphism from one query's body into the
  canonical instance of the other,
* the backchase checks candidate sub-queries for equivalence via the chase.

The implementation is a backtracking search with two standard optimisations:

* atoms of the instance are indexed by relation name (and by
  (relation, position, constant) for constant positions), so candidate target
  atoms are found without scanning the whole instance;
* pattern atoms are ordered most-constrained-first (fewest candidate targets,
  most already-bound variables), which prunes the search tree early.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, KeysView, Sequence

from repro.core.memo import LRUMemo, memo_enabled
from repro.core.terms import Atom, Constant, Substitution, Term, Variable

__all__ = ["InstanceIndex", "find_homomorphism", "iterate_homomorphisms", "count_homomorphisms"]

# Tokens distinguishing index instances for memo keys: two indexes with equal
# content never share a fingerprint, so cached homomorphisms cannot go stale.
_index_tokens = itertools.count()


class InstanceIndex:
    """Index of a set of facts, by relation and by constant positions.

    The index is incrementally updatable: the chase adds facts as it derives
    them and the index keeps lookup structures in sync.
    """

    __slots__ = ("_facts", "_by_relation", "_by_rel_pos_value", "_token", "_mutations")

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._facts: set[Atom] = set()
        self._by_relation: dict[str, list[Atom]] = {}
        self._by_rel_pos_value: dict[tuple[str, int, object], list[Atom]] = {}
        self._token: int = next(_index_tokens)
        self._mutations: int = 0
        for fact in facts:
            self.add(fact)

    # -- updates -------------------------------------------------------------
    def add(self, fact: Atom) -> bool:
        """Add a fact; returns False when it was already present."""
        if fact in self._facts:
            return False
        self._facts.add(fact)
        self._mutations += 1
        self._by_relation.setdefault(fact.relation, []).append(fact)
        for position, term in enumerate(fact.terms):
            if isinstance(term, Constant):
                key = (fact.relation, position, term.value)
                self._by_rel_pos_value.setdefault(key, []).append(fact)
        return True

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Add several facts; returns how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    # -- lookups -------------------------------------------------------------
    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._facts)

    def facts(self) -> frozenset[Atom]:
        """All facts as a frozen set."""
        return frozenset(self._facts)

    def relations(self) -> KeysView[str]:
        """Relation names present in the instance (a live set-like view)."""
        return self._by_relation.keys()

    @property
    def fingerprint(self) -> tuple[int, int]:
        """Identity + mutation count: a stable memo key for this index state."""
        return (self._token, self._mutations)

    def by_relation(self, relation: str) -> Sequence[Atom]:
        """Facts over ``relation``."""
        return self._by_relation.get(relation, ())

    def candidates(self, pattern: Atom, substitution: Substitution) -> Sequence[Atom]:
        """Facts that could match ``pattern`` under the current partial substitution.

        Uses the most selective available index: if any position of the
        pattern is a constant (or a variable already bound to a constant), the
        (relation, position, value) index is used; otherwise all facts of the
        relation are returned.
        """
        best: Sequence[Atom] | None = None
        for position, term in enumerate(pattern.terms):
            resolved = substitution.resolve(term)
            if isinstance(resolved, Constant):
                key = (pattern.relation, position, resolved.value)
                bucket = self._by_rel_pos_value.get(key, ())
                if best is None or len(bucket) < len(best):
                    best = bucket
                    if not best:
                        return ()
        if best is not None:
            return best
        return self._by_relation.get(pattern.relation, ())


def _match_atom(pattern: Atom, fact: Atom, substitution: Substitution) -> Substitution | None:
    """Try to extend ``substitution`` so that ``pattern`` maps onto ``fact``.

    Returns the extended substitution, or None when the atoms are incompatible.
    The input substitution is not modified.
    """
    if pattern.relation != fact.relation or pattern.arity != fact.arity:
        return None
    bindings: dict[Variable, Term] = {}
    for pattern_term, fact_term in zip(pattern.terms, fact.terms):
        resolved = substitution.resolve(pattern_term)
        if isinstance(resolved, Variable):
            # Still unbound (or bound within this atom): bind it.
            pending = bindings.get(resolved)
            if pending is None:
                bindings[resolved] = fact_term
            elif pending != fact_term:
                return None
        else:
            if resolved != fact_term:
                return None
    result = substitution
    for variable, term in bindings.items():
        result = result.bind(variable, term)
    return result


def _order_pattern(pattern: Sequence[Atom], index: InstanceIndex) -> list[Atom]:
    """Order pattern atoms most-constrained-first.

    A greedy ordering: repeatedly pick the atom with the fewest candidate
    facts, preferring atoms that share variables with already-placed atoms.
    """
    empty_substitution = Substitution.empty()
    # Fanout and variable sets do not change while ordering: compute them once
    # instead of once per (round, atom) pair as the greedy loop progresses.
    remaining = [
        (atom, len(index.candidates(atom, empty_substitution)), atom.variable_set())
        for atom in pattern
    ]
    ordered: list[Atom] = []
    bound: set[Variable] = set()
    while remaining:
        # Fewer candidates first; among equals, more shared variables first.
        # min() keeps the first minimal entry, preserving the deterministic
        # tie-break of the original (scan-in-pattern-order) implementation.
        best_position = min(
            range(len(remaining)),
            key=lambda i: (remaining[i][1], -len(remaining[i][2] & bound)),
        )
        atom, _, variables = remaining.pop(best_position)
        ordered.append(atom)
        bound.update(variables)
    return ordered


def iterate_homomorphisms(
    pattern: Sequence[Atom],
    instance: InstanceIndex | Iterable[Atom],
    seed: Substitution | None = None,
    limit: int | None = None,
) -> Iterator[Substitution]:
    """Yield homomorphisms from ``pattern`` into ``instance``.

    Parameters
    ----------
    pattern:
        Atoms (possibly containing variables) to map.
    instance:
        The target facts, as an :class:`InstanceIndex` or any iterable of
        ground atoms (an index is built on the fly in the latter case).
    seed:
        A partial substitution that every returned homomorphism must extend
        (used by the chase to fix the trigger found on the constraint body).
    limit:
        If given, stop after yielding this many homomorphisms.
    """
    if not isinstance(instance, InstanceIndex):
        instance = InstanceIndex(instance)
    if not pattern:
        yield seed or Substitution.empty()
        return

    ordered = _order_pattern(pattern, instance)
    produced = 0

    def search(position: int, substitution: Substitution) -> Iterator[Substitution]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if position == len(ordered):
            produced += 1
            yield substitution
            return
        atom = ordered[position]
        for fact in instance.candidates(atom, substitution):
            extended = _match_atom(atom, fact, substitution)
            if extended is None:
                continue
            yield from search(position + 1, extended)
            if limit is not None and produced >= limit:
                return

    yield from search(0, seed or Substitution.empty())


_NO_HOMOMORPHISM = object()
_find_memo = LRUMemo("find_homomorphism", max_entries=8192)


def find_homomorphism(
    pattern: Sequence[Atom],
    instance: InstanceIndex | Iterable[Atom],
    seed: Substitution | None = None,
    requirement: Callable[[Substitution], bool] | None = None,
) -> Substitution | None:
    """Return one homomorphism from ``pattern`` into ``instance`` or None.

    ``requirement`` optionally filters homomorphisms (e.g. "head variables must
    map to the expected values" for containment checks).

    Requirement-free searches against an :class:`InstanceIndex` are memoized
    on (pattern, index fingerprint, seed): the chase re-checks the same TGD
    head against the same instance state many times per round.
    """
    key = None
    if (
        requirement is None
        and isinstance(instance, InstanceIndex)
        and memo_enabled()
    ):
        key = (
            tuple(pattern),
            instance.fingerprint,
            None if seed is None else frozenset(seed.items()),
        )
        cached = _find_memo.get(key)
        if cached is not _find_memo.missing:
            return None if cached is _NO_HOMOMORPHISM else cached  # type: ignore[return-value]
    for homomorphism in iterate_homomorphisms(pattern, instance, seed=seed):
        if requirement is None or requirement(homomorphism):
            if key is not None:
                _find_memo.put(key, homomorphism)
            return homomorphism
    if key is not None:
        _find_memo.put(key, _NO_HOMOMORPHISM)
    return None


def count_homomorphisms(
    pattern: Sequence[Atom],
    instance: InstanceIndex | Iterable[Atom],
    limit: int | None = None,
) -> int:
    """Count homomorphisms from ``pattern`` into ``instance`` (up to ``limit``)."""
    count = 0
    for _ in iterate_homomorphisms(pattern, instance, limit=limit):
        count += 1
    return count
