"""The top-level rewriting driver used by the ESTOCADA query evaluator.

:class:`Rewriter` bundles everything the query evaluator needs to turn an
application query (already translated into the pivot model) into executable
candidate rewritings over the registered fragments:

* the fragment (view) definitions,
* the data-model constraints of the application and storage schemas,
* the access-pattern registry describing binding restrictions of the stores,
* a choice of rewriting algorithm (PACB by default, classical C&B for
  baseline measurements).

Rewritings violating an access pattern (e.g. requiring a full scan of a
key-value collection) are filtered out, implementing the paper's notion of
*feasible* rewritings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.backchase import BackchaseStatistics, classical_backchase
from repro.core.binding_patterns import AccessPatternRegistry, is_feasible
from repro.core.chase import ChaseConfig
from repro.core.constraints import Constraint, ConstraintSet
from repro.core.index import RewriteIndex, index_enabled
from repro.core.minimization import minimize
from repro.core.pacb import PACBStatistics, pacb_rewrite
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Variable
from repro.core.views import ViewDefinition
from repro.errors import InfeasibleRewritingError, NoRewritingFoundError, RewritingError

__all__ = ["RewritingOutcome", "Rewriter"]


@dataclass(slots=True)
class RewritingOutcome:
    """All rewritings found for one query, plus search telemetry."""

    query: ConjunctiveQuery
    rewritings: list[ConjunctiveQuery]
    feasible_rewritings: list[ConjunctiveQuery]
    algorithm: str
    elapsed_seconds: float
    statistics: PACBStatistics | BackchaseStatistics | None = None
    dropped_infeasible: int = 0
    notes: list[str] = field(default_factory=list)

    def best(self) -> ConjunctiveQuery:
        """The first feasible rewriting (callers may re-rank by cost)."""
        if not self.feasible_rewritings:
            raise NoRewritingFoundError(
                f"no feasible rewriting for query {self.query.name!r}"
            )
        return self.feasible_rewritings[0]


class Rewriter:
    """View-based query rewriting under constraints, with feasibility filtering.

    Parameters
    ----------
    views:
        The fragment definitions available for rewriting.
    schema_constraints:
        Constraints describing the application and storage data models.
    access_patterns:
        Binding-pattern registry; views may also carry their own pattern,
        which is registered automatically under the view's name.
    algorithm:
        ``"pacb"`` (default) or ``"classical"``.
    chase_config:
        Budget configuration forwarded to the chase.
    cost_bound_factory:
        Optional zero-argument callable returning a
        :class:`repro.cost.cost_model.RewritingCostBound` (or None); called
        once per :meth:`rewrite` so pruning always sees fresh statistics.
    """

    def __init__(
        self,
        views: Sequence[ViewDefinition],
        schema_constraints: ConstraintSet | Iterable[Constraint] | None = None,
        access_patterns: AccessPatternRegistry | None = None,
        algorithm: str = "pacb",
        chase_config: ChaseConfig | None = None,
        cost_bound_factory: "object | None" = None,
    ) -> None:
        if algorithm not in {"pacb", "classical"}:
            raise RewritingError(f"unknown rewriting algorithm {algorithm!r}")
        self._views = list(views)
        self._constraints = ConstraintSet(schema_constraints or ())
        self._access_patterns = access_patterns or AccessPatternRegistry()
        for view in self._views:
            if view.access_pattern is not None:
                self._access_patterns.register(view.access_pattern)
        self._algorithm = algorithm
        self._chase_config = chase_config or ChaseConfig()
        self._cost_bound_factory = cost_bound_factory
        self._index = RewriteIndex(self._views, self._constraints)

    # -- configuration -------------------------------------------------------
    @property
    def views(self) -> tuple[ViewDefinition, ...]:
        """The registered fragment definitions."""
        return tuple(self._views)

    @property
    def constraints(self) -> ConstraintSet:
        """The registered schema constraints."""
        return self._constraints

    @property
    def access_patterns(self) -> AccessPatternRegistry:
        """The binding-pattern registry used for feasibility filtering."""
        return self._access_patterns

    @property
    def algorithm(self) -> str:
        """The configured rewriting algorithm name."""
        return self._algorithm

    @property
    def index(self) -> RewriteIndex:
        """The relation-signature index used for candidate view selection."""
        return self._index

    def add_view(self, view: ViewDefinition) -> None:
        """Register an additional fragment definition."""
        self._views.append(view)
        if view.access_pattern is not None:
            self._access_patterns.register(view.access_pattern)
        self._index.add_view(view)

    def remove_view(self, name: str) -> bool:
        """Drop a fragment definition by name; returns False when unknown."""
        for position, view in enumerate(self._views):
            if view.name == name:
                del self._views[position]
                if view.access_pattern is not None:
                    self._access_patterns.unregister(name)
                self._index.remove_view(name)
                return True
        return False

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        """Register additional schema constraints."""
        added = [c for c in constraints if c not in self._constraints]
        self._constraints.extend(added)
        self._index.add_constraints(added)

    # -- rewriting -------------------------------------------------------------
    def rewrite(
        self,
        query: ConjunctiveQuery,
        bound_parameters: Iterable[Variable] = (),
        minimize_results: bool = True,
        max_rewritings: int | None = None,
        require_feasible: bool = False,
    ) -> RewritingOutcome:
        """Rewrite ``query`` over the registered views.

        Parameters
        ----------
        bound_parameters:
            Head variables whose values are supplied at execution time; they
            count as bound when checking access-pattern feasibility.
        minimize_results:
            Minimize each rewriting (drop redundant view atoms).
        require_feasible:
            When True, raise :class:`InfeasibleRewritingError` if rewritings
            exist but none is feasible.
        """
        if not self._views:
            raise RewritingError("no views registered; cannot rewrite")
        started = time.perf_counter()
        notes: list[str] = []
        if index_enabled():
            # Candidate selection: only views whose definition body lies in
            # the TGD-reachability closure of the query's relations can ever
            # contribute an atom to the universal plan.  This is what keeps
            # rewriting sub-linear in catalog size.
            candidates = self._index.candidate_views(query.relations())
            if len(candidates) < len(self._views):
                notes.append(
                    f"signature index selected {len(candidates)} of "
                    f"{len(self._views)} views"
                )
        else:
            candidates = self._views
        if not candidates:
            elapsed = time.perf_counter() - started
            notes.append("no candidate views share a relation signature with the query")
            return RewritingOutcome(
                query=query,
                rewritings=[],
                feasible_rewritings=[],
                algorithm=self._algorithm,
                elapsed_seconds=elapsed,
                statistics=None,
                notes=notes,
            )
        cost_bound = (
            self._cost_bound_factory() if self._cost_bound_factory is not None else None
        )
        statistics: PACBStatistics | BackchaseStatistics
        if self._algorithm == "pacb":
            result = pacb_rewrite(
                query,
                candidates,
                schema_constraints=self._constraints,
                config=self._chase_config,
                max_rewritings=max_rewritings,
                cost_bound=cost_bound,
            )
            rewritings = result.rewritings
            statistics = result.statistics
        else:
            rewritings, statistics = classical_backchase(
                query,
                candidates,
                schema_constraints=self._constraints,
                config=self._chase_config,
                max_rewritings=max_rewritings,
                cost_bound=cost_bound,
            )
        if minimize_results:
            rewritings = [minimize(rewriting) for rewriting in rewritings]
            rewritings = _deduplicate(rewritings)

        bound = tuple(bound_parameters)
        feasible = [
            rewriting
            for rewriting in rewritings
            if is_feasible(rewriting, self._access_patterns, bound_head_variables=bound)
        ]
        dropped = len(rewritings) - len(feasible)
        elapsed = time.perf_counter() - started

        outcome = RewritingOutcome(
            query=query,
            rewritings=rewritings,
            feasible_rewritings=feasible,
            algorithm=self._algorithm,
            elapsed_seconds=elapsed,
            statistics=statistics,
            dropped_infeasible=dropped,
            notes=notes,
        )
        if require_feasible and rewritings and not feasible:
            raise InfeasibleRewritingError(
                f"{len(rewritings)} rewriting(s) found for {query.name!r} but none is "
                "feasible under the registered access patterns"
            )
        return outcome


def _deduplicate(rewritings: Sequence[ConjunctiveQuery]) -> list[ConjunctiveQuery]:
    """Drop syntactic duplicates (same body atom multiset and head)."""
    seen: set[tuple] = set()
    unique: list[ConjunctiveQuery] = []
    for rewriting in rewritings:
        key = (rewriting.head_relation, rewriting.head_terms, frozenset(rewriting.body))
        if key not in seen:
            seen.add(key)
            unique.append(rewriting)
    return unique
