"""Provenance-Aware Chase & Backchase (PACB).

This is the efficient rewriting algorithm ESTOCADA relies on [Ileana, Cautis,
Deutsch, Katsis — SIGMOD 2014].  Instead of enumerating and re-chasing the
exponentially many sub-queries of the universal plan (the classical
backchase), PACB performs a *single* chase of the view atoms of the universal
plan with the backward view constraints and the data-model constraints, while
annotating every derived fact with a provenance formula recording which view
atoms it depends on.  Matching the original query once against this chased,
annotated instance and reading off the provenance of the matched facts yields
exactly the (minimal) rewritings.

The steps, mirrored by :func:`pacb_rewrite`:

1. chase the query with the forward view constraints (+ schema constraints)
   to obtain the universal plan and its view atoms;
2. annotate each view atom with a distinct provenance variable;
3. provenance-chase the annotated view atoms with the backward view
   constraints (+ schema constraints);
4. enumerate homomorphisms from the query body into the chased instance that
   preserve the head; conjoin the provenance of the image facts;
5. every minimal monomial of the resulting DNF names a subset of view atoms —
   a candidate rewriting; thaw it into a CQ over the view relations;
6. optionally verify and minimize each candidate (cheap, and keeps the
   implementation honest even on constraint sets beyond the theory's
   guarantees).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.chase import ChaseConfig, provenance_chase
from repro.core.constraints import Constraint, ConstraintSet
from repro.core.containment import is_equivalent_under_constraints
from repro.core.homomorphism import iterate_homomorphisms
from repro.core.provenance import ProvenanceFormula
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Atom, Constant, Substitution, Term
from repro.core.universal_plan import UniversalPlan, chase_query
from repro.core.backchase import candidate_to_query
from repro.core.views import ViewDefinition, combined_constraint_set
from repro.errors import RewritingError

__all__ = ["PACBStatistics", "PACBResult", "pacb_rewrite"]


@dataclass(slots=True)
class PACBStatistics:
    """Counters describing the work performed by a PACB run."""

    view_atoms_in_plan: int = 0
    chase_steps: int = 0
    provenance_chase_steps: int = 0
    head_matches: int = 0
    monomials_examined: int = 0
    equivalence_checks: int = 0
    rewritings_found: int = 0
    candidates_pruned_by_cost: int = 0
    notes: list[str] = field(default_factory=list)


@dataclass(slots=True)
class PACBResult:
    """The output of :func:`pacb_rewrite`."""

    query: ConjunctiveQuery
    rewritings: list[ConjunctiveQuery]
    statistics: PACBStatistics
    universal_plan: UniversalPlan | None = None


def _resolve_chain(term: Term, equalities: dict[Constant, Term]) -> Term:
    """Follow chase equalities until a fixpoint."""
    seen: set[Term] = set()
    current = term
    while isinstance(current, Constant) and current in equalities and current not in seen:
        seen.add(current)
        current = equalities[current]
    return current


def pacb_rewrite(
    query: ConjunctiveQuery,
    views: Sequence[ViewDefinition],
    schema_constraints: ConstraintSet | Iterable[Constraint] | None = None,
    config: ChaseConfig | None = None,
    verify: bool = True,
    max_rewritings: int | None = None,
    cost_bound: "object | None" = None,
) -> PACBResult:
    """Compute the view-based rewritings of ``query`` with the PACB algorithm.

    Parameters
    ----------
    query:
        The application query translated into the pivot model.
    views:
        Fragment definitions (materialized views over the pivot schema).
    schema_constraints:
        Data-model constraints (keys, functional dependencies, structural
        axioms such as "every Child is a Descendant").
    verify:
        When True (default), every candidate read off the provenance is
        double-checked for equivalence with the original query under the full
        constraint set before being returned.
    max_rewritings:
        Optional cap on the number of rewritings returned.
    cost_bound:
        Optional :class:`repro.cost.cost_model.RewritingCostBound`.  When
        given, a candidate whose *admissible lower bound* is already no better
        than the cheapest accepted rewriting's estimate is discarded before
        the (expensive) equivalence verification.
    """
    if not views:
        raise RewritingError("PACB needs at least one view")
    statistics = PACBStatistics()
    # Keep the caller's ConstraintSet identity when there is one: the chase
    # and containment memos key on its mutation token, so copying it here
    # would orphan every cross-call memo entry.
    if isinstance(schema_constraints, ConstraintSet):
        schema = schema_constraints
    else:
        schema = ConstraintSet(schema_constraints or ())
    views = tuple(views)

    # Step 1: universal plan (forward chase).
    forward = combined_constraint_set(views, schema, direction="forward")
    plan = chase_query(query, forward, config=config)
    view_names = {view.name for view in views}
    view_facts = plan.view_facts(view_names)
    statistics.view_atoms_in_plan = len(view_facts)
    if not view_facts:
        return PACBResult(query, [], statistics, plan)

    # Step 2: annotate each view atom with a provenance variable.
    annotated: dict[Atom, ProvenanceFormula] = {
        fact: ProvenanceFormula.variable(identifier)
        for identifier, fact in enumerate(view_facts)
    }
    identifier_to_fact = dict(enumerate(view_facts))

    # Step 3: provenance chase with the backward constraints.
    backward = combined_constraint_set(views, schema, direction="backward")
    chased = provenance_chase(annotated, backward, config=config)
    statistics.provenance_chase_steps = chased.steps

    # The provenance chase may have merged labelled nulls: track the head images.
    frozen_head = tuple(_resolve_chain(t, chased.equalities) for t in plan.frozen_head)

    # Step 4: match the query body against the chased instance.
    index = chased.index()
    combined = ProvenanceFormula.false()
    head_terms = query.head_terms

    def head_preserving(homomorphism: Substitution) -> bool:
        for query_term, frozen_term in zip(head_terms, frozen_head):
            if homomorphism.resolve(query_term) != frozen_term:
                return False
        return True

    for homomorphism in iterate_homomorphisms(query.body, index):
        if not head_preserving(homomorphism):
            continue
        statistics.head_matches += 1
        match_provenance = ProvenanceFormula.true()
        for body_atom in query.body:
            image = body_atom.apply(homomorphism)
            match_provenance = match_provenance.conjunction(
                chased.provenance.get(image, ProvenanceFormula.true())
            )
        combined = combined.disjunction(match_provenance)

    if combined.is_false():
        statistics.notes.append("no head-preserving match of the query in the backchase instance")
        return PACBResult(query, [], statistics, plan)

    # Step 5/6: one candidate rewriting per minimal monomial.
    all_constraints = combined_constraint_set(views, schema, direction="both")
    rewritings: list[ConjunctiveQuery] = []
    seen: set[frozenset[Atom]] = set()
    best_estimate: float | None = None
    for monomial in sorted(combined.minimal_monomials(), key=lambda m: (len(m), sorted(m))):
        statistics.monomials_examined += 1
        facts = tuple(identifier_to_fact[i] for i in sorted(monomial))
        key = frozenset(facts)
        if key in seen:
            continue
        seen.add(key)
        if cost_bound is not None and best_estimate is not None:
            # Admissible pruning: the lower bound can only underestimate the
            # candidate's true cost, so discarding it cannot lose a rewriting
            # cheaper than the best one already accepted.
            floor = cost_bound.lower_bound(fact.relation for fact in facts)
            if floor >= best_estimate:
                statistics.candidates_pruned_by_cost += 1
                continue
        candidate = candidate_to_query(query, facts, plan)
        if candidate is None:
            statistics.notes.append("candidate dropped: head variables not exposed by views")
            continue
        if verify:
            statistics.equivalence_checks += 1
            if not is_equivalent_under_constraints(candidate, query, all_constraints, config=config):
                statistics.notes.append("candidate dropped: failed verification")
                continue
        rewritings.append(candidate)
        statistics.rewritings_found += 1
        if cost_bound is not None:
            estimate = cost_bound.estimate(fact.relation for fact in facts)
            if best_estimate is None or estimate < best_estimate:
                best_estimate = estimate
        if max_rewritings is not None and len(rewritings) >= max_rewritings:
            break

    return PACBResult(query, rewritings, statistics, plan)
