"""Chasing a query into its *universal plan*.

The first phase of Chase & Backchase takes the user query ``Q`` and chases it
(as a query, i.e. symbolically on its body atoms) with the forward view
constraints and the data-model constraints.  The result — the *universal
plan* ``U`` — is a query whose body contains, in particular, one atom per
view that can contribute to answering ``Q``.  The second phase (backchase)
looks for minimal sub-queries of ``U`` that remain equivalent to ``Q``.

Chasing a query symbolically is implemented by freezing the body (variables
become labelled nulls), running the instance-level chase, then thawing
(labelled nulls become variables again, preserving the identity of the
original variables).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.chase import ChaseConfig, ChaseResult, chase, is_labelled_null
from repro.core.constraints import Constraint, ConstraintSet
from repro.core.query import ConjunctiveQuery, freeze_atoms
from repro.core.terms import Atom, Constant, Substitution, Term, Variable

__all__ = ["UniversalPlan", "chase_query", "thaw_term", "thaw_atoms"]


class UniversalPlan:
    """The chased form of a query, with the bookkeeping needed by the backchase.

    Attributes
    ----------
    query:
        The original query ``Q``.
    plan:
        The universal plan as a conjunctive query (same head as ``Q``,
        chased body, variables throughout).
    frozen_facts:
        The chased body as ground facts (labelled nulls in place of
        variables); the backchase works on this representation.
    frozen_head:
        The images of the head terms under freezing + chase equalities.
    freezing:
        The substitution that froze the original query variables.
    thawing:
        The mapping from labelled nulls back to variables used to build
        ``plan`` (and used again to thaw candidate rewriting bodies).
    """

    __slots__ = ("query", "plan", "frozen_facts", "frozen_head", "freezing", "thawing")

    def __init__(
        self,
        query: ConjunctiveQuery,
        plan: ConjunctiveQuery,
        frozen_facts: frozenset[Atom],
        frozen_head: tuple[Term, ...],
        freezing: Substitution,
        thawing: dict[Constant, Variable],
    ) -> None:
        self.query = query
        self.plan = plan
        self.frozen_facts = frozen_facts
        self.frozen_head = frozen_head
        self.freezing = freezing
        self.thawing = thawing

    def view_facts(self, view_names: Iterable[str]) -> tuple[Atom, ...]:
        """The frozen facts of the plan whose relation is one of ``view_names``."""
        names = set(view_names)
        return tuple(
            fact for fact in sorted(self.frozen_facts, key=repr) if fact.relation in names
        )


def _resolve_chain(term: Term, equalities: dict[Constant, Term]) -> Term:
    """Follow chase equalities until a fixpoint (guards against cycles)."""
    seen: set[Term] = set()
    current = term
    while isinstance(current, Constant) and current in equalities and current not in seen:
        seen.add(current)
        current = equalities[current]
    return current


def thaw_term(term: Term, thawing: dict[Constant, Variable]) -> Term:
    """Convert a labelled null back into a variable (other terms unchanged)."""
    if isinstance(term, Constant) and is_labelled_null(term):
        variable = thawing.get(term)
        if variable is None:
            variable = Variable(f"u{len(thawing)}")
            thawing[term] = variable
        return variable
    return term


def thaw_atoms(atoms: Iterable[Atom], thawing: dict[Constant, Variable]) -> list[Atom]:
    """Thaw a collection of frozen atoms back into atoms over variables."""
    return [
        Atom(atom.relation, [thaw_term(t, thawing) for t in atom.terms]) for atom in atoms
    ]


def chase_query(
    query: ConjunctiveQuery,
    constraints: ConstraintSet | Iterable[Constraint],
    config: ChaseConfig | None = None,
) -> UniversalPlan:
    """Chase ``query`` with ``constraints`` and return its universal plan."""
    frozen_facts, freezing = freeze_atoms(query.body)
    result: ChaseResult = chase(frozen_facts, constraints, config=config)

    # The chase may have merged labelled nulls: re-resolve the frozen head.
    frozen_head = tuple(
        _resolve_chain(freezing.resolve(t), result.equalities) for t in query.head_terms
    )

    # Thaw: original variables keep their identity, chase-invented nulls get
    # fresh variable names.
    thawing: dict[Constant, Variable] = {}
    for variable, null in freezing.items():
        resolved = _resolve_chain(null, result.equalities)
        if isinstance(resolved, Constant) and is_labelled_null(resolved):
            thawing.setdefault(resolved, variable)

    plan_body = thaw_atoms(sorted(result.facts, key=repr), thawing)
    plan_head = [thaw_term(t, thawing) for t in frozen_head]
    plan = ConjunctiveQuery(
        query.head_relation, plan_head, plan_body, name=f"{query.name}_universal"
    )
    return UniversalPlan(
        query=query,
        plan=plan,
        frozen_facts=result.facts,
        frozen_head=frozen_head,
        freezing=freezing,
        thawing=thawing,
    )
