"""Conjunctive-query minimization (core computation).

A CQ is *minimal* when no proper subset of its body atoms yields an
equivalent query.  Minimization removes redundant atoms, which matters twice
in ESTOCADA: minimal rewritings touch fewer fragments (and are thus cheaper),
and the classical backchase enumerates sub-queries in increasing size, so
working with minimized inputs shrinks its search space.

The implementation follows the textbook greedy algorithm: repeatedly try to
drop one atom and keep the query equivalent; because CQ equivalence is
confluent with respect to atom removal, the greedy result is the core
(unique up to isomorphism).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.chase import ChaseConfig
from repro.core.constraints import Constraint, ConstraintSet
from repro.core.containment import is_equivalent, is_equivalent_under_constraints
from repro.core.query import ConjunctiveQuery

__all__ = ["minimize", "minimize_under_constraints", "is_minimal"]


def _try_remove_atoms(
    query: ConjunctiveQuery,
    equivalent: "callable",
) -> ConjunctiveQuery:
    """Greedy single-atom removal loop shared by both minimization entry points."""
    current = query
    improved = True
    while improved and len(current.body) > 1:
        improved = False
        head_variables = set(current.head_variables())
        for index in range(len(current.body)):
            candidate_body = current.body[:index] + current.body[index + 1:]
            remaining_variables = set()
            for atom in candidate_body:
                remaining_variables.update(atom.variable_set())
            if not head_variables <= remaining_variables:
                continue
            candidate = current.with_body(candidate_body)
            if equivalent(candidate, current):
                current = candidate
                improved = True
                break
    return current


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Return the core of ``query`` (equivalent query with minimal body)."""
    return _try_remove_atoms(query, is_equivalent)


def minimize_under_constraints(
    query: ConjunctiveQuery,
    constraints: ConstraintSet | Iterable[Constraint],
    config: ChaseConfig | None = None,
) -> ConjunctiveQuery:
    """Minimize ``query`` modulo the given constraints."""
    if not isinstance(constraints, ConstraintSet):
        constraints = ConstraintSet(constraints)

    def equivalent(candidate: ConjunctiveQuery, original: ConjunctiveQuery) -> bool:
        return is_equivalent_under_constraints(candidate, original, constraints, config=config)

    return _try_remove_atoms(query, equivalent)


def is_minimal(query: ConjunctiveQuery) -> bool:
    """True when no single body atom can be dropped without changing the query."""
    return len(minimize(query).body) == len(query.body)
