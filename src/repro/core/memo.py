"""Bounded memoization caches for the rewriting engine.

The PACB backchase repeats the same expensive sub-computations many times:
chasing the canonical instance of a candidate with the same constraint set,
checking containment between alpha-equivalent candidate/query pairs, and
searching for homomorphisms into the same chased instance.  This module
provides the small, bounded LRU caches those call sites share, plus a global
registry so benchmarks can report hit rates and tests can reset state.

Soundness of the keys rests on two facts:

* :func:`repro.core.query.freeze_atoms` uses a *per-call* counter, so the
  same query body always freezes to the identical canonical instance —
  frozen fact sets are therefore stable cache keys;
* mutable containers (:class:`~repro.core.constraints.ConstraintSet`,
  :class:`~repro.core.homomorphism.InstanceIndex`) are keyed by a globally
  monotonic *mutation token*, never by content, so a container that changed
  (or a new container that happens to have equal content) can never alias a
  stale entry.

Memoization is on by default and can be disabled with ``REPRO_REWRITE_MEMO=0``
(the sibling ``REPRO_REWRITE_INDEX=0`` switch disables candidate-view and
constraint-dispatch indexing; see :mod:`repro.core.index`).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable

__all__ = ["LRUMemo", "memo_enabled", "memo_stats", "clear_memos", "register_memo"]

_MISSING = object()


def memo_enabled() -> bool:
    """True unless ``REPRO_REWRITE_MEMO=0`` disables result memoization."""
    return os.environ.get("REPRO_REWRITE_MEMO", "1") != "0"


class LRUMemo:
    """A small bounded least-recently-used cache with hit/miss counters."""

    __slots__ = ("name", "max_entries", "_entries", "hits", "misses", "evictions")

    def __init__(self, name: str, max_entries: int = 4096) -> None:
        self.name = name
        self.max_entries = max_entries
        self._entries: OrderedDict[object, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        register_memo(self)

    def get(self, key: object) -> object:
        """Return the cached value for ``key`` or the module sentinel."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return _MISSING
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: object, value: object) -> None:
        """Insert ``key -> value``, evicting the least recently used entry."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_compute(self, key: object, compute: Callable[[], object]) -> object:
        """Cached lookup with fallback computation (exceptions are not cached)."""
        value = self.get(key)
        if value is _MISSING:
            value = compute()
            self.put(key, value)
        return value

    @property
    def missing(self) -> object:
        """The sentinel returned by :meth:`get` on a miss."""
        return _MISSING

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Counters for telemetry: size, hits, misses, evictions."""
        return {
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_REGISTRY: list[LRUMemo] = []


def register_memo(memo: LRUMemo) -> None:
    """Track a memo in the global registry (for stats and reset)."""
    _REGISTRY.append(memo)


def memo_stats() -> dict[str, dict[str, int]]:
    """Stats of every registered memo, keyed by memo name."""
    return {memo.name: memo.stats() for memo in _REGISTRY}


def clear_memos() -> None:
    """Reset every registered memo (used by tests and benchmarks)."""
    for memo in _REGISTRY:
        memo.clear()
