"""Terms of the pivot model: variables, constants, atoms and substitutions.

The pivot model of ESTOCADA is relational: every data model (relational,
document, key-value, nested) is encoded as a set of relations, and queries,
view definitions and constraints are built from *atoms* over those relations.
An atom is a relation name applied to a tuple of *terms*; a term is either a
:class:`Variable` or a :class:`Constant`.

The module also provides :class:`Substitution`, a mapping from variables to
terms used by homomorphism search, the chase and query rewriting.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import ArityError, PivotModelError

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "Atom",
    "Substitution",
    "fresh_variable",
    "reset_variable_counter",
]

# Chase and homomorphism inner loops hash the same few variables millions of
# times; interning bounds allocation and makes the identity fast path in
# ``__eq__`` hit for all common variables.  The cap keeps the table from
# growing without bound under fresh-variable generation.
_VARIABLE_INTERN_LIMIT = 65_536


class Variable:
    """A named variable of the pivot model.

    Variables are compared and hashed by name; two variables with the same
    name are the same variable.  Instances are immutable, hash-cached and
    interned (up to a bound), so construction of a known name returns the
    existing object and equality short-circuits on identity.
    """

    __slots__ = ("name", "_hash")

    _interned: dict[str, "Variable"] = {}

    def __new__(cls, name: str) -> "Variable":
        interned = cls._interned.get(name)
        if interned is not None:
            return interned
        self = object.__new__(cls)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("Variable", name)))
        if len(cls._interned) < _VARIABLE_INTERN_LIMIT:
            cls._interned[name] = self
        return self

    def __setattr__(self, key: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Variable is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> tuple:
        return (Variable, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"?{self.name}"

    def __str__(self) -> str:
        return f"?{self.name}"


class Constant:
    """A constant value (string, number, boolean or ``None``).

    Immutable with a lazily cached hash (lazy because arbitrary values may be
    unhashable until someone actually asks).  Not interned: distinct values
    are unbounded, and Python's ``1 == True == 1.0`` coercion would make an
    intern table conflate representations that print differently.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: object) -> None:
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, key: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Constant is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("Constant", self.value))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __reduce__(self) -> tuple:
        return (Constant, (self.value,))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.value!r}"

    def __str__(self) -> str:
        return repr(self.value)


Term = Variable | Constant

_fresh_counter = itertools.count()


def fresh_variable(prefix: str = "v") -> Variable:
    """Return a variable with a globally unique name.

    Used by the chase (labelled nulls), query normalization and the
    rewriting engine when new existential variables must be invented.
    """
    return Variable(f"_{prefix}{next(_fresh_counter)}")


def reset_variable_counter() -> None:
    """Reset the fresh-variable counter (for reproducible tests only)."""
    global _fresh_counter
    _fresh_counter = itertools.count()


def _as_term(value: object) -> Term:
    """Coerce a raw Python value into a :class:`Term`.

    Strings starting with ``?`` become variables; everything else becomes a
    constant.  Existing terms pass through unchanged.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value.startswith("?"):
        return Variable(value[1:])
    return Constant(value)


class Atom:
    """A relational atom ``R(t1, ..., tn)`` over pivot-model terms.

    Atoms are immutable and hashable, which lets chase instances and query
    bodies be stored in sets for fast duplicate detection.
    """

    __slots__ = ("relation", "terms", "_hash")

    def __init__(self, relation: str, terms: Sequence[object]) -> None:
        if not relation:
            raise PivotModelError("atom relation name must be non-empty")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(_as_term(t) for t in terms))
        object.__setattr__(self, "_hash", hash((relation, self.terms)))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("Atom is immutable")

    # -- basic protocol ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self.relation == other.relation
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({args})"

    def __len__(self) -> int:
        return len(self.terms)

    # -- accessors ---------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of terms in the atom."""
        return len(self.terms)

    def variables(self) -> tuple[Variable, ...]:
        """All variable occurrences, in positional order (with duplicates)."""
        return tuple(t for t in self.terms if isinstance(t, Variable))

    def variable_set(self) -> frozenset[Variable]:
        """The set of distinct variables appearing in the atom."""
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def constants(self) -> tuple[Constant, ...]:
        """All constant occurrences, in positional order."""
        return tuple(t for t in self.terms if isinstance(t, Constant))

    def is_ground(self) -> bool:
        """True when the atom contains no variables (i.e. it is a fact)."""
        return not any(isinstance(t, Variable) for t in self.terms)

    # -- transformation ----------------------------------------------------
    def apply(self, substitution: "Substitution") -> "Atom":
        """Return a copy of the atom with ``substitution`` applied."""
        return Atom(self.relation, [substitution.resolve(t) for t in self.terms])

    def rename(self, mapping: Mapping[Variable, Variable]) -> "Atom":
        """Rename variables according to ``mapping`` (missing ones unchanged)."""
        return Atom(
            self.relation,
            [mapping.get(t, t) if isinstance(t, Variable) else t for t in self.terms],
        )

    def check_arity(self, expected: int) -> None:
        """Raise :class:`ArityError` unless the atom has ``expected`` terms."""
        if self.arity != expected:
            raise ArityError(
                f"relation {self.relation!r} expects arity {expected}, "
                f"atom has arity {self.arity}"
            )


class Substitution:
    """A mapping from variables to terms.

    Substitutions are the workhorse of homomorphism search and the chase.
    They are immutable from the outside: ``bind`` returns a new substitution
    (sharing storage where possible) rather than mutating in place, which keeps
    backtracking search code simple and bug-free.
    """

    __slots__ = ("_mapping", "_hash")

    def __init__(self, mapping: Mapping[Variable, Term] | None = None) -> None:
        self._mapping: dict[Variable, Term] = dict(mapping or {})
        self._hash: int | None = None

    # -- construction ------------------------------------------------------
    @classmethod
    def empty(cls) -> "Substitution":
        """The identity substitution."""
        return cls()

    def bind(self, variable: Variable, term: Term) -> "Substitution":
        """Return a new substitution extending this one with ``variable -> term``.

        Raises :class:`PivotModelError` if the variable is already bound to a
        different term.
        """
        existing = self._mapping.get(variable)
        if existing is not None and existing != term:
            raise PivotModelError(
                f"variable {variable} already bound to {existing}, cannot rebind to {term}"
            )
        new = Substitution(self._mapping)
        new._mapping[variable] = term
        return new

    def bind_mutable(self, variable: Variable, term: Term) -> None:
        """In-place bind used by performance-sensitive search loops."""
        self._mapping[variable] = term
        self._hash = None

    def unbind_mutable(self, variable: Variable) -> None:
        """In-place unbind used by performance-sensitive search loops."""
        self._mapping.pop(variable, None)
        self._hash = None

    def copy(self) -> "Substitution":
        """Return an independent copy."""
        return Substitution(self._mapping)

    # -- lookup ------------------------------------------------------------
    def resolve(self, term: Term) -> Term:
        """Map a term through the substitution (constants map to themselves)."""
        if isinstance(term, Variable):
            return self._mapping.get(term, term)
        return term

    def get(self, variable: Variable) -> Term | None:
        """The image of ``variable``, or None when unbound."""
        return self._mapping.get(variable)

    def __contains__(self, variable: Variable) -> bool:
        return variable in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._mapping)

    def items(self) -> Iterable[tuple[Variable, Term]]:
        """Iterate over (variable, term) bindings."""
        return self._mapping.items()

    def as_dict(self) -> dict[Variable, Term]:
        """A copy of the underlying mapping."""
        return dict(self._mapping)

    # -- combination ---------------------------------------------------------
    def compose(self, other: "Substitution") -> "Substitution":
        """Return ``self`` followed by ``other`` (apply self, then other)."""
        combined: dict[Variable, Term] = {
            var: other.resolve(term) for var, term in self._mapping.items()
        }
        for var, term in other.items():
            combined.setdefault(var, term)
        return Substitution(combined)

    def merge(self, other: "Substitution") -> "Substitution | None":
        """Union of two substitutions, or None if they conflict."""
        merged = dict(self._mapping)
        for var, term in other.items():
            existing = merged.get(var)
            if existing is not None and existing != term:
                return None
            merged[var] = term
        return Substitution(merged)

    # -- protocol ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Substitution) and self._mapping == other._mapping

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._mapping.items()))
            self._hash = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        pairs = ", ".join(f"{v} -> {t}" for v, t in sorted(
            self._mapping.items(), key=lambda item: item[0].name))
        return f"{{{pairs}}}"


def _micro_assert_equality_semantics() -> None:
    """Equality must behave exactly as with the former dataclass terms."""
    assert Variable("x") == Variable("x") and hash(Variable("x")) == hash(Variable("x"))
    assert Variable("x") != Variable("y")
    assert Constant(1) == Constant(1) and hash(Constant(1)) == hash(Constant(1))
    assert Constant(1) != Constant(2)
    assert Variable("x") != Constant("x") and Constant("x") != Variable("x")
    assert Atom("R", ["?x", 1]) == Atom("R", ["?x", 1])
    assert Substitution({Variable("x"): Constant(1)}) == Substitution(
        {Variable("x"): Constant(1)}
    )


_micro_assert_equality_semantics()
