"""The pivot model and constraint-based rewriting engine (ESTOCADA's core).

This package implements the paper's primary contribution: a relational pivot
model with constraints able to encode heterogeneous data models, and
view-based query rewriting under constraints via the Chase & Backchase — both
the classical algorithm (baseline) and the Provenance-Aware C&B (PACB) that
ESTOCADA actually uses.
"""

from repro.core.backchase import BackchaseStatistics, classical_backchase
from repro.core.binding_patterns import AccessPattern, AccessPatternRegistry, feasible_order, is_feasible
from repro.core.chase import ChaseConfig, ChaseFailure, ChaseResult, chase, provenance_chase
from repro.core.constraints import (
    EGD,
    TGD,
    ConstraintSet,
    functional_dependency,
    inclusion_dependency,
    key_constraint,
)
from repro.core.containment import (
    is_contained_in,
    is_contained_under_constraints,
    is_equivalent,
    is_equivalent_under_constraints,
)
from repro.core.homomorphism import InstanceIndex, find_homomorphism, iterate_homomorphisms
from repro.core.index import RewriteIndex, index_enabled
from repro.core.memo import clear_memos, memo_enabled, memo_stats
from repro.core.minimization import minimize, minimize_under_constraints
from repro.core.pacb import PACBResult, PACBStatistics, pacb_rewrite
from repro.core.provenance import ProvenanceFormula
from repro.core.query import ConjunctiveQuery, UnionQuery
from repro.core.rewriting import Rewriter, RewritingOutcome
from repro.core.terms import Atom, Constant, Substitution, Variable, fresh_variable
from repro.core.universal_plan import UniversalPlan, chase_query
from repro.core.views import ViewDefinition, views_constraint_set

__all__ = [
    "Atom",
    "Constant",
    "Variable",
    "Substitution",
    "fresh_variable",
    "ConjunctiveQuery",
    "UnionQuery",
    "TGD",
    "EGD",
    "ConstraintSet",
    "key_constraint",
    "functional_dependency",
    "inclusion_dependency",
    "InstanceIndex",
    "find_homomorphism",
    "iterate_homomorphisms",
    "ChaseConfig",
    "ChaseResult",
    "ChaseFailure",
    "chase",
    "provenance_chase",
    "chase_query",
    "UniversalPlan",
    "is_contained_in",
    "is_equivalent",
    "is_contained_under_constraints",
    "is_equivalent_under_constraints",
    "minimize",
    "minimize_under_constraints",
    "ProvenanceFormula",
    "AccessPattern",
    "AccessPatternRegistry",
    "feasible_order",
    "is_feasible",
    "ViewDefinition",
    "views_constraint_set",
    "classical_backchase",
    "BackchaseStatistics",
    "pacb_rewrite",
    "PACBResult",
    "PACBStatistics",
    "Rewriter",
    "RewritingOutcome",
    "RewriteIndex",
    "index_enabled",
    "memo_enabled",
    "memo_stats",
    "clear_memos",
]
