"""Access-pattern (binding-pattern) restrictions on pivot relations.

Key-value stores — and more generally any source behind a lookup API — cannot
be scanned freely: *"the value of the key must be specified in order to access
the values associated to this key"*.  ESTOCADA encodes such access
restrictions as *binding patterns* on the pivot relations representing the
stored fragments: every position is either an **input** position (must be
bound before the source can be called) or an **output** position (returned by
the source).

A rewriting is *feasible* only if its atoms can be ordered so that, when an
atom over an access-restricted relation is reached, all its input positions
are already bound — by a constant of the query or by an output of a
previously evaluated atom.  The same notion drives the planner's choice of a
BindJoin order at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.query import ConjunctiveQuery
from repro.core.terms import Atom, Constant, Variable
from repro.errors import PivotModelError

__all__ = ["AccessPattern", "AccessPatternRegistry", "feasible_order", "is_feasible"]


@dataclass(frozen=True, slots=True)
class AccessPattern:
    """The binding pattern of a relation.

    ``pattern`` is a string with one character per position: ``'i'`` for an
    input (bound) position and ``'o'`` for an output (free) position.  A
    relation with no input positions is freely scannable.
    """

    relation: str
    pattern: str

    def __post_init__(self) -> None:
        if not all(ch in "io" for ch in self.pattern):
            raise PivotModelError(
                f"access pattern for {self.relation!r} must use only 'i'/'o', got {self.pattern!r}"
            )

    @property
    def arity(self) -> int:
        """Number of positions covered by the pattern."""
        return len(self.pattern)

    def input_positions(self) -> tuple[int, ...]:
        """Positions that must be bound before access."""
        return tuple(i for i, ch in enumerate(self.pattern) if ch == "i")

    def output_positions(self) -> tuple[int, ...]:
        """Positions returned by the access."""
        return tuple(i for i, ch in enumerate(self.pattern) if ch == "o")

    def is_free(self) -> bool:
        """True when the relation can be scanned with no bound position."""
        return "i" not in self.pattern


class AccessPatternRegistry:
    """Registry mapping relation names to their access patterns.

    Relations without a registered pattern are assumed freely accessible
    (all-output), which is the right default for ordinary relational and
    document fragments.
    """

    __slots__ = ("_patterns",)

    def __init__(self, patterns: Iterable[AccessPattern] = ()) -> None:
        self._patterns: dict[str, AccessPattern] = {}
        for pattern in patterns:
            self.register(pattern)

    def register(self, pattern: AccessPattern) -> None:
        """Register (or replace) the pattern for a relation."""
        self._patterns[pattern.relation] = pattern

    def unregister(self, relation: str) -> AccessPattern | None:
        """Drop the pattern of ``relation`` (no-op when unregistered)."""
        return self._patterns.pop(relation, None)

    def get(self, relation: str, arity: int | None = None) -> AccessPattern:
        """The pattern of ``relation`` (an all-output default when unregistered)."""
        pattern = self._patterns.get(relation)
        if pattern is not None:
            return pattern
        return AccessPattern(relation, "o" * (arity or 0))

    def __contains__(self, relation: str) -> bool:
        return relation in self._patterns

    def __len__(self) -> int:
        return len(self._patterns)

    def patterns(self) -> Mapping[str, AccessPattern]:
        """A read-only view of the registered patterns."""
        return dict(self._patterns)


def feasible_order(
    atoms: Sequence[Atom],
    registry: AccessPatternRegistry,
    initially_bound: Iterable[Variable] = (),
) -> list[Atom] | None:
    """Find an evaluation order satisfying every access pattern, or None.

    Greedy algorithm: repeatedly pick any not-yet-placed atom whose input
    positions are all bound (by constants, by ``initially_bound`` variables,
    or by outputs of already-placed atoms).  The greedy strategy is complete
    here because placing an atom never *unbinds* anything: if a feasible
    order exists, at every step at least one atom is placeable.
    """
    bound: set[Variable] = set(initially_bound)
    remaining = list(atoms)
    ordered: list[Atom] = []

    def placeable(atom: Atom) -> bool:
        pattern = registry.get(atom.relation, atom.arity)
        for position in pattern.input_positions():
            if position >= atom.arity:
                raise PivotModelError(
                    f"access pattern of {atom.relation!r} longer than atom arity {atom.arity}"
                )
            term = atom.terms[position]
            if isinstance(term, Constant):
                continue
            if isinstance(term, Variable) and term in bound:
                continue
            return False
        return True

    while remaining:
        progress = False
        for atom in list(remaining):
            if placeable(atom):
                ordered.append(atom)
                remaining.remove(atom)
                bound.update(atom.variable_set())
                progress = True
                break
        if not progress:
            return None
    return ordered


def is_feasible(
    query: ConjunctiveQuery,
    registry: AccessPatternRegistry,
    bound_head_variables: Iterable[Variable] = (),
) -> bool:
    """True when ``query`` admits an access-pattern-respecting evaluation order.

    ``bound_head_variables`` lists head variables whose values are supplied by
    the caller (e.g. parameters of a parameterized query); they count as bound
    from the start.
    """
    return feasible_order(query.body, registry, initially_bound=bound_head_variables) is not None
