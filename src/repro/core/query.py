"""Conjunctive queries over the pivot model.

A :class:`ConjunctiveQuery` (CQ) has a *head* — the answer relation name and
its distinguished variables/constants — and a *body*, an ordered tuple of
atoms.  CQs are the common currency of ESTOCADA: application queries, view
(fragment) definitions and rewritings are all CQs (or small unions of CQs).

The module also provides :class:`UnionQuery` for unions of conjunctive
queries, plus the structural helpers needed by the chase and the rewriting
engine: variable classification, canonical instances (freezing), renaming
apart, and merging.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Sequence

from repro.core.terms import Atom, Constant, Substitution, Term, Variable, fresh_variable
from repro.errors import PivotModelError

__all__ = ["ConjunctiveQuery", "UnionQuery", "freeze_atoms", "canonical_instance"]


class ConjunctiveQuery:
    """A conjunctive query ``head(x...) :- body_1, ..., body_n``.

    Parameters
    ----------
    head_relation:
        Name of the answer relation (conventionally ``"Q"`` for user queries
        or the fragment name for view definitions).
    head_terms:
        The distinguished terms.  Raw strings starting with ``?`` are parsed
        as variables, other raw values as constants.
    body:
        The atoms of the query body.
    name:
        Optional human-readable name used in plans and error messages.
    """

    __slots__ = ("head_relation", "head_terms", "body", "name", "_hash")

    def __init__(
        self,
        head_relation: str,
        head_terms: Sequence[object],
        body: Sequence[Atom],
        name: str | None = None,
    ) -> None:
        if not body:
            raise PivotModelError("conjunctive query body must contain at least one atom")
        head = Atom(head_relation, head_terms)
        object.__setattr__(self, "head_relation", head.relation)
        object.__setattr__(self, "head_terms", head.terms)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "name", name or head_relation)
        object.__setattr__(
            self, "_hash", hash((self.head_relation, self.head_terms, frozenset(self.body)))
        )
        self._validate()

    def __setattr__(self, key: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("ConjunctiveQuery is immutable")

    def _validate(self) -> None:
        body_vars = self.body_variables()
        for term in self.head_terms:
            if isinstance(term, Variable) and term not in body_vars:
                raise PivotModelError(
                    f"head variable {term} of query {self.name!r} does not occur in the body"
                )

    # -- accessors ---------------------------------------------------------
    @property
    def head(self) -> Atom:
        """The head as an atom (recomputed on demand)."""
        return Atom(self.head_relation, self.head_terms)

    def head_variables(self) -> tuple[Variable, ...]:
        """Distinguished variables, in head order (duplicates preserved)."""
        return tuple(t for t in self.head_terms if isinstance(t, Variable))

    def body_variables(self) -> frozenset[Variable]:
        """All variables occurring in the body."""
        result: set[Variable] = set()
        for atom in self.body:
            result.update(atom.variable_set())
        return frozenset(result)

    def existential_variables(self) -> frozenset[Variable]:
        """Body variables that do not appear in the head."""
        return self.body_variables() - set(self.head_variables())

    def constants(self) -> frozenset[Constant]:
        """All constants occurring in head or body."""
        result: set[Constant] = set()
        result.update(t for t in self.head_terms if isinstance(t, Constant))
        for atom in self.body:
            result.update(atom.constants())
        return frozenset(result)

    def relations(self) -> frozenset[str]:
        """Names of the relations used in the body."""
        return frozenset(atom.relation for atom in self.body)

    def atoms_over(self, relation: str) -> tuple[Atom, ...]:
        """The body atoms over ``relation``."""
        return tuple(atom for atom in self.body if atom.relation == relation)

    def is_boolean(self) -> bool:
        """True when the query has an empty head (yes/no query)."""
        return not self.head_terms

    # -- transformations -----------------------------------------------------
    def apply(self, substitution: Substitution) -> "ConjunctiveQuery":
        """Apply a substitution to head and body."""
        return ConjunctiveQuery(
            self.head_relation,
            [substitution.resolve(t) for t in self.head_terms],
            [atom.apply(substitution) for atom in self.body],
            name=self.name,
        )

    def rename_apart(self, suffix: str | None = None) -> "ConjunctiveQuery":
        """Return an isomorphic copy whose variables are globally fresh.

        Used before combining queries (e.g. folding a view definition into a
        query body) so that variable names never clash.
        """
        mapping: dict[Variable, Variable] = {}
        for var in sorted(self.body_variables() | set(self.head_variables()),
                          key=lambda v: v.name):
            mapping[var] = fresh_variable(suffix or var.name)
        return self.rename(mapping)

    def rename(self, mapping: Mapping[Variable, Variable]) -> "ConjunctiveQuery":
        """Rename variables; variables not in ``mapping`` are unchanged."""
        return ConjunctiveQuery(
            self.head_relation,
            [mapping.get(t, t) if isinstance(t, Variable) else t for t in self.head_terms],
            [atom.rename(mapping) for atom in self.body],
            name=self.name,
        )

    def with_body(self, body: Sequence[Atom], name: str | None = None) -> "ConjunctiveQuery":
        """A copy of this query with a different body (same head)."""
        return ConjunctiveQuery(
            self.head_relation, self.head_terms, body, name=name or self.name
        )

    def with_name(self, name: str) -> "ConjunctiveQuery":
        """A copy of this query with a different name."""
        return ConjunctiveQuery(self.head_relation, self.head_terms, self.body, name=name)

    def extend_body(self, extra: Iterable[Atom]) -> "ConjunctiveQuery":
        """A copy with additional body atoms appended."""
        return self.with_body(tuple(self.body) + tuple(extra))

    def project(self, head_terms: Sequence[object], head_relation: str | None = None
                ) -> "ConjunctiveQuery":
        """A copy of this query with a different head."""
        return ConjunctiveQuery(
            head_relation or self.head_relation, head_terms, self.body, name=self.name
        )

    # -- canonical (frozen) instance -----------------------------------------
    def canonical_instance(self) -> tuple[frozenset[Atom], Substitution]:
        """Freeze the query body into a set of facts.

        Every variable is replaced by a distinct labelled-null constant; the
        result is the *canonical instance* used by the chase and by
        containment checks.  Returns the facts and the freezing substitution.
        """
        return canonical_instance(self.body)

    # -- protocol -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConjunctiveQuery)
            and self.head_relation == other.head_relation
            and self.head_terms == other.head_terms
            and frozenset(self.body) == frozenset(other.body)
        )

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self.body)

    def __repr__(self) -> str:
        head = ", ".join(str(t) for t in self.head_terms)
        body = ", ".join(repr(atom) for atom in self.body)
        return f"{self.head_relation}({head}) :- {body}"


class UnionQuery:
    """A union of conjunctive queries sharing the same head signature."""

    __slots__ = ("disjuncts", "name")

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery], name: str | None = None) -> None:
        if not disjuncts:
            raise PivotModelError("a union query needs at least one disjunct")
        arities = {len(q.head_terms) for q in disjuncts}
        if len(arities) != 1:
            raise PivotModelError(
                f"union disjuncts must share the head arity, got arities {sorted(arities)}"
            )
        object.__setattr__(self, "disjuncts", tuple(disjuncts))
        object.__setattr__(self, "name", name or disjuncts[0].name)

    def __setattr__(self, key: str, value: object) -> None:  # pragma: no cover
        raise AttributeError("UnionQuery is immutable")

    def __iter__(self):
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __repr__(self) -> str:
        return " UNION ".join(repr(q) for q in self.disjuncts)


def freeze_atoms(
    atoms: Sequence[Atom], prefix: str = "null"
) -> tuple[frozenset[Atom], Substitution]:
    """Replace every variable in ``atoms`` by a fresh labelled-null constant.

    The labelled nulls are :class:`Constant` objects whose value is a string
    ``"_:<prefix><i>_<varname>"``; they are distinguishable from ordinary
    constants by :func:`is_labelled_null`.
    """
    counter = itertools.count()
    mapping: dict[Variable, Term] = {}
    frozen: list[Atom] = []
    for atom in atoms:
        for term in atom.terms:
            if isinstance(term, Variable) and term not in mapping:
                mapping[term] = Constant(f"_:{prefix}{next(counter)}_{term.name}")
        substitution = Substitution(mapping)
        frozen.append(atom.apply(substitution))
    return frozenset(frozen), Substitution(mapping)


def canonical_instance(atoms: Sequence[Atom]) -> tuple[frozenset[Atom], Substitution]:
    """Alias of :func:`freeze_atoms` with the conventional name."""
    return freeze_atoms(atoms)


def is_labelled_null(term: Term) -> bool:
    """True when ``term`` is a labelled null produced by :func:`freeze_atoms`."""
    return isinstance(term, Constant) and isinstance(term.value, str) and term.value.startswith("_:")
