"""repro — a reproduction of ESTOCADA (ICDE 2016).

ESTOCADA is a flexible hybrid (poly-)store: one logical dataset is stored as a
set of possibly overlapping fragments across heterogeneous data management
systems, and application queries are answered by view-based rewriting under
constraints (Provenance-Aware Chase & Backchase) followed by cross-store
execution.

The top-level facade is :class:`repro.Estocada`; the rewriting engine lives in
:mod:`repro.core`; the simulated store substrates in :mod:`repro.stores`.
"""

from repro._version import __version__

__all__ = ["__version__", "Estocada", "QueryService", "TenantPolicy", "ServiceResult"]


def __getattr__(name: str):
    # Lazy import keeps `import repro` cheap and avoids import cycles while the
    # facade pulls in every subsystem.
    if name == "Estocada":
        from repro.estocada import Estocada

        return Estocada
    if name in ("QueryService", "TenantPolicy", "ServiceResult"):
        from repro import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
