"""The Section-II marketplace scenario, end to end.

Reproduces the narrative of the paper's motivating example:

1. the first deployment stores users/purchases in Postgres, carts in MongoDB,
   the catalog in SOLR and the browsing log in the Spark-like parallel store;
2. the predominant key-lookup workload is then accelerated by adding
   key-value fragments (the "+20 %" step);
3. the personalized item-search query is accelerated by materializing the
   purchases ⋈ browsing-history join as a nested relation in the parallel
   store (the "+40 %" step) — without touching the application queries.

Run with:  python examples/marketplace_scenario.py
"""

from repro import Estocada
from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, Constant, ViewDefinition
from repro.datamodel import TableSchema
from repro.stores import DocumentStore, FullTextStore, KeyValueStore, ParallelStore, RelationalStore
from repro.workloads import MarketplaceConfig, generate_marketplace, key_lookup_workload


def view(name, head, body, columns):
    return ViewDefinition(name, ConjunctiveQuery(name, head, body), column_names=columns)


def build_initial_deployment(data):
    est = Estocada()
    est.register_store("pg", RelationalStore("pg"))
    est.register_store("redis", KeyValueStore("redis"))
    est.register_store("mongo", DocumentStore("mongo"))
    est.register_store("solr", FullTextStore("solr"))
    est.register_store("spark", ParallelStore("spark"))
    est.register_relational_dataset(
        "shop",
        [
            TableSchema("users", ("uid", "name", "city", "payment", "preferred_category"), primary_key=("uid",)),
            TableSchema("purchases", ("uid", "sku", "category", "quantity", "price")),
            TableSchema("visits", ("uid", "sku", "category", "duration_ms")),
            TableSchema("carts", ("cart_id", "uid", "sku", "quantity")),
            TableSchema("products", ("sku", "title", "description", "category", "price"), primary_key=("sku",)),
        ],
    )
    est.register_fragment(
        StorageDescriptor(
            "F_users", "shop", "pg",
            view("F_users", ["?u", "?n", "?c", "?p", "?pc"],
                 [Atom("users", ["?u", "?n", "?c", "?p", "?pc"])],
                 ("uid", "name", "city", "payment", "preferred_category")),
            StorageLayout("users"), AccessMethod("scan")),
        rows=[{"uid": u["uid"], "name": u["name"], "city": u["city"], "payment": u["payment"],
               "preferred_category": u["preferred_category"]} for u in data.users])
    est.register_fragment(
        StorageDescriptor(
            "F_purchases", "shop", "pg",
            view("F_purchases", ["?u", "?s", "?c", "?q", "?pr"],
                 [Atom("purchases", ["?u", "?s", "?c", "?q", "?pr"])],
                 ("uid", "sku", "category", "quantity", "price")),
            StorageLayout("purchases"), AccessMethod("scan")),
        rows=data.purchases(), indexes=("uid",))
    est.register_fragment(
        StorageDescriptor(
            "F_visits", "shop", "spark",
            view("F_visits", ["?u", "?s", "?c", "?d"], [Atom("visits", ["?u", "?s", "?c", "?d"])],
                 ("uid", "sku", "category", "duration_ms")),
            StorageLayout("visits"), AccessMethod("scan")),
        rows=[{"uid": v["uid"], "sku": v["sku"], "category": v["category"], "duration_ms": v["duration_ms"]}
              for v in data.weblog], indexes=("uid",))
    cart_rows = [
        {"cart_id": c["_id"], "uid": c["uid"], "sku": item["sku"], "quantity": item["quantity"]}
        for c in data.carts for item in c["items"]
    ]
    est.register_fragment(
        StorageDescriptor(
            "F_carts", "shop", "mongo",
            view("F_carts", ["?cid", "?u", "?s", "?q"], [Atom("carts", ["?cid", "?u", "?s", "?q"])],
                 ("cart_id", "uid", "sku", "quantity")),
            StorageLayout("carts"), AccessMethod("scan")),
        rows=cart_rows)
    est.register_fragment(
        StorageDescriptor(
            "F_catalog", "shop", "solr",
            view("F_catalog", ["?s", "?t", "?d", "?c", "?p"],
                 [Atom("products", ["?s", "?t", "?d", "?c", "?p"])],
                 ("sku", "title", "description", "category", "price")),
            StorageLayout("catalog"), AccessMethod("scan")),
        rows=data.products, indexes=("title", "description"))
    return est


def add_keyvalue_fragments(est, data):
    """Step 2 of the scenario: move the key-lookup fragments to the key-value store."""
    est.register_fragment(
        StorageDescriptor(
            "F_prefs", "shop", "redis",
            view("F_prefs", ["?u", "?pc"], [Atom("users", ["?u", "?n", "?c", "?p", "?pc"])],
                 ("uid", "preferred_category")),
            StorageLayout("prefs"), AccessMethod("lookup", key_columns=("uid",))),
        rows=[{"uid": u["uid"], "preferred_category": u["preferred_category"]} for u in data.users])
    est.register_fragment(
        StorageDescriptor(
            "F_carts_kv", "shop", "redis",
            view("F_carts_kv", ["?cid", "?u", "?s", "?q"], [Atom("carts", ["?cid", "?u", "?s", "?q"])],
                 ("cart_id", "uid", "sku", "quantity")),
            StorageLayout("carts_kv"), AccessMethod("lookup", key_columns=("cart_id",))),
        rows=[{"cart_id": c["_id"], "uid": c["uid"], "sku": i["sku"], "quantity": i["quantity"]}
              for c in data.carts for i in c["items"]])


def add_materialized_join(est, data):
    """Step 3 of the scenario: materialize purchases ⋈ browsing history in Spark."""
    definition = ConjunctiveQuery(
        "F_user_product", ["?u", "?s", "?c", "?d"],
        [Atom("purchases", ["?u", "?s", "?c", "?q", "?pr"]), Atom("visits", ["?u", "?s", "?c2", "?d"])])
    by_user_sku = {}
    for p in data.purchases():
        by_user_sku.setdefault((p["uid"], p["sku"]), p)
    rows = [
        {"uid": v["uid"], "sku": v["sku"], "category": by_user_sku[(v["uid"], v["sku"])]["category"],
         "duration_ms": v["duration_ms"]}
        for v in data.weblog if (v["uid"], v["sku"]) in by_user_sku
    ]
    est.register_fragment(
        StorageDescriptor(
            "F_user_product", "shop", "spark",
            ViewDefinition("F_user_product", definition,
                           column_names=("uid", "sku", "category", "duration_ms")),
            StorageLayout("user_product"), AccessMethod("scan")),
        rows=rows, indexes=("uid",))


def run_key_workload(est, workload):
    seconds = 0.0
    for kind, key in workload:
        if kind == "prefs":
            query = ConjunctiveQuery("prefs", ["?pc"], [Atom("users", [Constant(key), "?n", "?c", "?p", "?pc"])])
        else:
            query = ConjunctiveQuery("cart", ["?u", "?s", "?q"], [Atom("carts", [Constant(key), "?u", "?s", "?q"])])
        seconds += est.query(query).elapsed_seconds
    return seconds


def personalized_search(est, uid):
    query = ConjunctiveQuery(
        "personalized", ["?s", "?c", "?d"],
        [Atom("purchases", [Constant(uid), "?s", "?c", "?q", "?pr"]),
         Atom("visits", [Constant(uid), "?s", "?c2", "?d"])])
    return est.query(query)


def main() -> None:
    data = generate_marketplace(MarketplaceConfig(users=200, products=300, orders=800, carts=150, log_lines=3000))
    workload = key_lookup_workload(data, lookups=80)

    print("== step 1: initial deployment (pg + mongo + solr + spark)")
    est = build_initial_deployment(data)
    baseline = run_key_workload(est, workload)
    print(f"   key-lookup workload execution time: {baseline:.4f}s")

    print("== step 2: add key-value fragments for preferences and carts")
    add_keyvalue_fragments(est, data)
    improved = run_key_workload(est, workload)
    print(f"   key-lookup workload execution time: {improved:.4f}s "
          f"({1 - improved / baseline:.0%} faster; the paper reports ~20%)")

    print("== step 3: materialize purchases ⋈ browsing history in the parallel store")
    before = personalized_search(est, uid=4)
    add_materialized_join(est, data)
    after = personalized_search(est, uid=4)
    print(f"   personalized search before: {before.elapsed_seconds:.4f}s via {sorted(before.store_breakdown)}")
    print(f"   personalized search after : {after.elapsed_seconds:.4f}s via {sorted(after.store_breakdown)}")
    print(f"   answers identical: {sorted(map(str, before.rows)) == sorted(map(str, after.rows))}")

    print("== the application query text never changed.")


if __name__ == "__main__":
    main()
