"""Write-path demo: DML interleaved with fragment-served reads.

A ``users`` / ``orders`` dataset backs three materialized fragments — the
two relations stored as-such plus a users ⋈ orders join view.  The demo
declares the relations writable, then interleaves inserts, updates and
deletes with SQL reads:

* under the default **eager** policy every affected fragment (including the
  join view) is maintained incrementally inside the write call, so the next
  read simply sees the new state;
* under the **deferred** policy writes only log view deltas — the demo shows
  the per-fragment staleness counters rising, a bounded read
  (``max_staleness=0``) forcing maintenance, and an explicit ``maintain()``
  draining the backlog.

Run with:  python examples/write_path_demo.py
"""

from repro import Estocada
from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, ViewDefinition
from repro.datamodel import TableSchema
from repro.stores import RelationalStore


def view(name, head, body, columns):
    return ViewDefinition(name, ConjunctiveQuery(name, head, body), column_names=columns)


def show(est, label, sql):
    rows = est.query(sql, dataset="app").rows
    print(f"  {label}: {sorted(tuple(sorted(r.items())) for r in rows)}")


def main() -> None:
    est = Estocada()
    est.register_store("pg", RelationalStore("pg"))
    est.register_relational_dataset(
        "app",
        [
            TableSchema("users", ("uid", "name", "city")),
            TableSchema("orders", ("uid", "sku", "qty")),
        ],
    )

    users = [
        {"uid": 1, "name": "ana", "city": "paris"},
        {"uid": 2, "name": "bob", "city": "lyon"},
    ]
    orders = [
        {"uid": 1, "sku": "book", "qty": 2},
        {"uid": 2, "sku": "lamp", "qty": 1},
    ]

    # Declare the base relations writable (the engine shadows them), then
    # register the fragments; each is materialized from the shadow and
    # watched for incremental maintenance.
    est.load_relation("users", users, dataset="app")
    est.load_relation("orders", orders, dataset="app")
    est.register_fragment(
        StorageDescriptor(
            "F_users", "app", "pg",
            view("F_users", ["?u", "?n", "?c"], [Atom("users", ["?u", "?n", "?c"])],
                 ("uid", "name", "city")),
            StorageLayout("users"), AccessMethod("scan"),
        ),
        indexes=("uid",),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_orders", "app", "pg",
            view("F_orders", ["?u", "?s", "?q"], [Atom("orders", ["?u", "?s", "?q"])],
                 ("uid", "sku", "qty")),
            StorageLayout("orders"), AccessMethod("scan"),
        ),
        indexes=("uid",),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_user_orders", "app", "pg",
            view("F_user_orders", ["?u", "?n", "?s", "?q"],
                 [Atom("users", ["?u", "?n", "?c"]), Atom("orders", ["?u", "?s", "?q"])],
                 ("uid", "name", "sku", "qty")),
            StorageLayout("user_orders"), AccessMethod("scan"),
        ),
        indexes=("uid",),
    )

    print("== eager policy: writes maintain affected fragments in-line ==")
    show(est, "join before", "SELECT u.name, o.sku, o.qty FROM users u, orders o WHERE u.uid = o.uid")
    est.insert("orders", {"uid": 1, "sku": "pen", "qty": 3})
    est.update(
        "orders",
        {"uid": 2, "sku": "lamp", "qty": 1},
        {"uid": 2, "sku": "lamp", "qty": 5},
    )
    show(est, "join after ", "SELECT u.name, o.sku, o.qty FROM users u, orders o WHERE u.uid = o.uid")
    print(f"  staleness: {dict(est.staleness())}  (eager writes leave nothing pending)")

    print("\n== deferred policy: deltas queue, reads choose their bound ==")
    est.set_write_policy("deferred")
    est.insert("orders", {"uid": 1, "sku": "mug", "qty": 1})
    est.delete("orders", {"uid": 2, "sku": "lamp", "qty": 5})
    for fragment in ("F_orders", "F_user_orders", "F_users"):
        print(f"  {fragment}: {est.staleness(fragment).describe()}")

    # An unbounded read may serve the (detectably) stale fragment; a
    # max_staleness=0 read forces maintenance first.
    rows = est.query(
        "SELECT sku, qty FROM orders WHERE uid = 1", dataset="app", max_staleness=0
    ).rows
    print(f"  bounded read (max_staleness=0): {sorted((r['sku'], r['qty']) for r in rows)}")
    print(f"  F_orders after bounded read: {est.staleness('F_orders').describe()}")

    written = est.maintain()
    print(f"  maintain() drained the rest: {written} store rows written")
    show(est, "join final ", "SELECT u.name, o.sku, o.qty FROM users u, orders o WHERE u.uid = o.uid")
    print(f"  write-path state: {est.describe_writes()['mode']}, "
          f"{est.describe_writes()['writes']} writes logged")


if __name__ == "__main__":
    main()
