"""Self-tuning demo: drift detection and live fragment migration.

A ``users`` / ``visits`` dataset starts with ``visits`` parked on a slow
archival store.  The demo runs a visits-heavy workload, then lets the
self-tuning loop react:

* the :class:`~repro.advisor.DriftMonitor` reads the statistics the serving
  layer already gathered (per-fragment read counts and EWMA latencies) and
  flags ``F_visits`` as a *hot fragment on a slow placement*;
* :meth:`Estocada.autotune` executes the planned migration **live** —
  dual-write + backfill + atomic cutover — while the fragment keeps serving;
* a second migration is killed mid-backfill to show the rollback guarantee:
  the old placement never stopped serving and reads stay bag-identical.

Run with:  python examples/autotune_demo.py
"""

import threading

from repro import Estocada
from repro.advisor import AutotunePolicy, DriftMonitor
from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, ViewDefinition
from repro.datamodel import TableSchema
from repro.stores import RelationalStore


def view(name, head, body, columns):
    return ViewDefinition(name, ConjunctiveQuery(name, head, body), column_names=columns)


def bag(est, sql):
    return sorted(tuple(sorted(r.items())) for r in est.query(sql, dataset="app").rows)


def main() -> None:
    est = Estocada()
    est.register_store("fast", RelationalStore("fast"))
    est.register_store("archive", RelationalStore("archive", latency=0.01))
    est.register_relational_dataset(
        "app",
        [
            TableSchema("users", ("uid", "name", "city"), primary_key=("uid",)),
            TableSchema("visits", ("uid", "sku", "duration_ms")),
        ],
    )
    users = [{"uid": u, "name": f"user-{u}", "city": "paris"} for u in range(20)]
    visits = [{"uid": i % 20, "sku": f"s{i % 7}", "duration_ms": i} for i in range(200)]
    est.load_relation("users", users, dataset="app")
    est.load_relation("visits", visits, dataset="app")
    est.register_fragment(
        StorageDescriptor(
            "F_users", "app", "fast",
            view("F_users", ["?u", "?n", "?c"], [Atom("users", ["?u", "?n", "?c"])],
                 ("uid", "name", "city")),
            StorageLayout("users"), AccessMethod("scan"),
        ),
        indexes=("uid",),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_visits", "app", "archive",
            view("F_visits", ["?u", "?s", "?d"], [Atom("visits", ["?u", "?s", "?d"])],
                 ("uid", "sku", "duration_ms")),
            StorageLayout("visits"), AccessMethod("scan"),
        ),
        indexes=("uid",),
    )

    print("== the workload shifts: visits-heavy traffic on the archival store ==")
    for _ in range(15):
        est.query("SELECT uid, sku FROM visits WHERE uid = 3", dataset="app")
    print(f"  F_visits lives on: {est.catalog.fragment('F_visits').store}")

    print("\n== what the drift monitor sees ==")
    policy = AutotunePolicy(min_reads=5, hot_read_share=0.3, hot_latency_seconds=0.001)
    monitor = DriftMonitor(est, policy)
    for finding in monitor.findings():
        print(f"  [{finding.kind}] {finding.fragment}: {finding.detail}")
    for action in monitor.plan_actions():
        print(f"  -> migrate {action.fragment} to {action.target_store}")

    print("\n== autotune: live dual-write + backfill + cutover ==")
    before = bag(est, "SELECT uid, sku, duration_ms FROM visits")
    report = est.autotune(policy=policy)
    for outcome in report["migrations"]:
        print(f"  {outcome['fragment']} -> {outcome['target_store']}: {outcome['phase']}")
    print(f"  F_visits now lives on: {est.catalog.fragment('F_visits').store}")
    print(f"  reads bag-identical across cutover: {bag(est, 'SELECT uid, sku, duration_ms FROM visits') == before}")

    print("\n== a write after cutover flows to the new placement ==")
    est.insert("visits", {"uid": 3, "sku": "fresh", "duration_ms": 1})
    rows = bag(est, "SELECT sku FROM visits WHERE uid = 3")
    print(f"  visits of uid 3: {rows}")

    print("\n== chaos: kill a migration mid-backfill; it rolls back ==")
    cancel = threading.Event()
    killed = est.migrate_fragment(
        "F_visits", "archive", cancel=cancel, chunk_rows=16,
        phase_hook=lambda phase: cancel.set() if phase == "backfill" else None,
    )
    print(f"  phase: {killed.phase} ({killed.error})")
    print(f"  F_visits still lives on: {est.catalog.fragment('F_visits').store}")

    print("\n== migration history ==")
    for record in est.describe_migrations():
        print(f"  {record['fragment']}: {record['source_store']} -> "
              f"{record['target_store']} [{record['phase']}]")


if __name__ == "__main__":
    main()
