"""Quickstart: one dataset, two stores, transparent rewriting.

A ``users`` dataset is stored twice: as-such in the relational store and as a
key-value collection keyed on ``uid``.  The application keeps issuing SQL;
ESTOCADA rewrites each query over the registered fragments, picks the cheapest
feasible plan (the key-value lookup for point queries, the relational scan for
everything else) and executes it.

Run with:  python examples/quickstart.py
"""

from repro import Estocada
from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, ViewDefinition
from repro.datamodel import TableSchema
from repro.stores import KeyValueStore, RelationalStore


def main() -> None:
    est = Estocada()
    est.register_store("pg", RelationalStore("pg"))
    est.register_store("redis", KeyValueStore("redis"))
    est.register_relational_dataset(
        "app", [TableSchema("users", ("uid", "name", "city"), primary_key=("uid",))]
    )

    users = [
        {"uid": 1, "name": "ana", "city": "paris"},
        {"uid": 2, "name": "bob", "city": "lyon"},
        {"uid": 3, "name": "cleo", "city": "paris"},
    ]

    # Fragment 1: the users table stored as-such in the relational store.
    full_view = ViewDefinition(
        "F_users",
        ConjunctiveQuery("F_users", ["?u", "?n", "?c"], [Atom("users", ["?u", "?n", "?c"])]),
        column_names=("uid", "name", "city"),
    )
    est.register_fragment(
        StorageDescriptor("F_users", "app", "pg", full_view, StorageLayout("users"), AccessMethod("scan")),
        rows=users,
    )

    # Fragment 2: a key-value projection keyed on uid (only reachable by key).
    kv_view = ViewDefinition(
        "F_users_kv",
        ConjunctiveQuery("F_users_kv", ["?u", "?n"], [Atom("users", ["?u", "?n", "?c"])]),
        column_names=("uid", "name"),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_users_kv", "app", "redis", kv_view, StorageLayout("users_kv"),
            AccessMethod("lookup", key_columns=("uid",)),
        ),
        rows=[{"uid": u["uid"], "name": u["name"]} for u in users],
    )

    point = "SELECT name FROM users WHERE uid = 2"
    scan = "SELECT name FROM users WHERE city = 'paris'"

    print("== explain:", point)
    explanation = est.explain(point, dataset="app")
    for ranked in explanation.ranked_plans:
        fragments = sorted({a.relation for a in ranked.rewriting.body})
        print(f"   candidate {fragments} estimated cost {ranked.estimate.total_cost:.1f}")
    print(explanation.plan_text())

    print("== run:", point)
    result = est.query(point, dataset="app")
    print("   rows:", result.rows, "| stores used:", sorted(result.store_breakdown))

    print("== run:", scan)
    result = est.query(scan, dataset="app")
    print("   rows:", result.rows, "| stores used:", sorted(result.store_breakdown))


if __name__ == "__main__":
    main()
