"""Quickstart: one dataset, two stores, transparent rewriting.

A ``users`` dataset is stored twice: as-such in the relational store and as a
key-value collection keyed on ``uid``.  The application keeps issuing SQL;
ESTOCADA rewrites each query over the registered fragments, picks the cheapest
feasible plan (the key-value lookup for point queries, the relational scan for
everything else) and executes it.

The second half demonstrates **tuning parallelism**: a query fanning out to
several stores runs its delegated requests concurrently when the executor is
given more than one worker.  The next section demonstrates **sharding**: a
high-volume collection spread across 8 relational instances, with the
planner pruning point queries to a single shard and scatter-gathering
unpruned scans.  The next section demonstrates **replication**: the same
collection held by 3 full-copy replicas, with transient errors retried,
a dead replica failed over, and a slow replica hedged.  The next section
demonstrates **multi-tenant serving**: two tenants sharing one mediator
through an admission-controlled :class:`repro.service.QueryService`, with
per-tenant quotas, priorities, deadlines and plan-cache namespaces.  The
last section demonstrates **durability**: ``Estocada(durable_path=...)``
persists every store through a write-ahead log + columnar segments, a
fresh mediator recovers the data from disk, and zone-mapped segment
skipping shows up in ``result.summary()["segments"]``.

Run with:  python examples/quickstart.py
"""

import time

from repro import Estocada
from repro.catalog import AccessMethod, ShardingSpec, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, ViewDefinition
from repro.datamodel import TableSchema
from repro.stores import DocumentStore, KeyValueStore, RelationalStore, ReplicationPolicy
from repro.testing import FaultInjector, FaultProfile


def main() -> None:
    est = Estocada()
    est.register_store("pg", RelationalStore("pg"))
    est.register_store("redis", KeyValueStore("redis"))
    est.register_relational_dataset(
        "app", [TableSchema("users", ("uid", "name", "city"), primary_key=("uid",))]
    )

    users = [
        {"uid": 1, "name": "ana", "city": "paris"},
        {"uid": 2, "name": "bob", "city": "lyon"},
        {"uid": 3, "name": "cleo", "city": "paris"},
    ]

    # Fragment 1: the users table stored as-such in the relational store.
    full_view = ViewDefinition(
        "F_users",
        ConjunctiveQuery("F_users", ["?u", "?n", "?c"], [Atom("users", ["?u", "?n", "?c"])]),
        column_names=("uid", "name", "city"),
    )
    est.register_fragment(
        StorageDescriptor("F_users", "app", "pg", full_view, StorageLayout("users"), AccessMethod("scan")),
        rows=users,
    )

    # Fragment 2: a key-value projection keyed on uid (only reachable by key).
    kv_view = ViewDefinition(
        "F_users_kv",
        ConjunctiveQuery("F_users_kv", ["?u", "?n"], [Atom("users", ["?u", "?n", "?c"])]),
        column_names=("uid", "name"),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_users_kv", "app", "redis", kv_view, StorageLayout("users_kv"),
            AccessMethod("lookup", key_columns=("uid",)),
        ),
        rows=[{"uid": u["uid"], "name": u["name"]} for u in users],
    )

    point = "SELECT name FROM users WHERE uid = 2"
    scan = "SELECT name FROM users WHERE city = 'paris'"

    print("== explain:", point)
    explanation = est.explain(point, dataset="app")
    for ranked in explanation.ranked_plans:
        fragments = sorted({a.relation for a in ranked.rewriting.body})
        print(f"   candidate {fragments} estimated cost {ranked.estimate.total_cost:.1f}")
    print(explanation.plan_text())

    print("== run:", point)
    result = est.query(point, dataset="app")
    print("   rows:", result.rows, "| stores used:", sorted(result.store_breakdown))

    print("== run:", scan)
    result = est.query(scan, dataset="app")
    print("   rows:", result.rows, "| stores used:", sorted(result.store_breakdown))

    tuning_parallelism()
    sharding()
    replication()
    multi_tenant_service()
    durability()


def tuning_parallelism() -> None:
    """Tuning parallelism: overlap the store requests of a multi-store fan-out.

    Three fragments live in three different stores, each simulating a 20 ms
    per-request service latency (as the real Postgres/MongoDB backends
    would).  Serially the query pays ~3 x 20 ms in store time; with
    ``parallelism`` workers the delegated scans overlap and the query pays
    roughly the max.  Three knobs, from coarse to fine:

    * ``REPRO_PARALLELISM=4`` (environment) — process-wide default;
    * ``Estocada(parallelism=4)`` — per-mediator default;
    * ``est.query(..., parallelism=4)`` — per-query override (1 = serial).

    Two further execution knobs (both usually best left at their defaults):

    * ``REPRO_BATCH_SIZE=256`` / ``Estocada(batch_size=256)`` — rows per
      ``RowBatch`` flowing through the runtime (must be >= 1; bigger batches
      amortize per-batch overhead, smaller ones reduce LIMIT overshoot);
    * ``REPRO_COMPILED=0`` — disable the compiled native-batch kernels and
      fall back to the interpreted per-row engine (bag-identical answers,
      ~2-3x slower on scan-heavy queries; ``REPRO_FUSED=0`` keeps the
      kernels but disables operator fusion).  The active path and the
      per-operator throughput counters show up in
      ``result.summary()["execution"]``;
    * ``REPRO_REWRITE_INDEX=0`` — disable the relation-signature index
      that narrows rewriting to the views reachable from the query, and
      fall back to scanning every registered fragment (identical
      rewritings, but rewrite latency grows with catalog size — see
      ``BENCH_e14.json``; ``REPRO_REWRITE_MEMO=0`` likewise disables the
      chase/containment memos);
    * ``REPRO_DURABLE=/path`` / ``Estocada(durable_path=...)`` — persist
      every registered store through a per-store WAL + columnar segment
      backing (see :func:`durability` below; ``REPRO_SEGMENT_SCAN=0``
      keeps the durability but serves scans from memory, and
      ``REPRO_SEGMENT_ROWS`` sets how many rows freeze per segment).
    """
    est = Estocada(parallelism=1)  # serial by default; overridden per query
    est.register_store("pg", RelationalStore("pg", latency=0.02))
    est.register_store("mongo", DocumentStore("mongo", latency=0.02))
    est.register_store("redis2", KeyValueStore("redis2", latency=0.02, allow_scans=True))
    est.register_relational_dataset(
        "app",
        [
            TableSchema("users", ("uid", "name")),
            TableSchema("orders", ("uid", "sku")),
            TableSchema("visits", ("uid", "ms")),
        ],
    )

    def fragment(name, store, relation, columns, collection):
        head = [f"?{c}" for c in columns]
        view = ViewDefinition(
            name, ConjunctiveQuery(name, head, [Atom(relation, head)]), column_names=columns
        )
        return StorageDescriptor(
            name, "app", store, view, StorageLayout(collection), AccessMethod("scan")
        )

    est.register_fragment(
        fragment("F_users2", "pg", "users", ("uid", "name"), "users"),
        rows=[{"uid": i, "name": f"u{i}"} for i in range(40)],
    )
    est.register_fragment(
        fragment("F_orders", "mongo", "orders", ("uid", "sku"), "orders"),
        rows=[{"uid": i % 40, "sku": f"s{i}"} for i in range(80)],
    )
    est.register_fragment(
        fragment("F_visits2", "redis2", "visits", ("uid", "ms"), "visits"),
        rows=[{"uid": i % 40, "ms": 10 * i} for i in range(60)],
    )

    fanout = ConjunctiveQuery(
        "fanout",
        ["?uid", "?sku", "?ms"],
        [Atom("users", ["?uid", "?name"]), Atom("orders", ["?uid", "?sku"]),
         Atom("visits", ["?uid", "?ms"])],
    )
    est.query(fanout)  # warm the plan cache so both runs measure execution only

    print("== tuning parallelism (3-store fan-out, 20 ms simulated latency/request)")
    for workers in (1, 4):
        started = time.perf_counter()
        result = est.query(fanout, parallelism=workers)
        elapsed = time.perf_counter() - started
        print(
            f"   parallelism={workers}: {elapsed * 1e3:6.1f} ms, "
            f"{len(result.rows)} rows, "
            f"max concurrent store requests: {result.max_concurrent_requests}"
        )


def sharding() -> None:
    """Sharding: spread one collection over 8 instances, prune or fan out.

    The fragment's descriptor declares how it is sharded
    (``ShardingSpec("uid", 8)`` = hash on uid over 8 shards); materialization
    routes the rows.  A query whose constant binds the shard key contacts
    exactly one shard (one request's latency); an unpruned scan fans out one
    request per shard, overlapped by the parallel executor.
    """
    est = Estocada(parallelism=4)
    est.register_sharded_store(
        "shardpg", 8, lambda name: RelationalStore(name, latency=0.01)
    )
    est.register_relational_dataset(
        "app", [TableSchema("events", ("uid", "action", "ms"))]
    )
    view = ViewDefinition(
        "F_events",
        ConjunctiveQuery("F_events", ["?u", "?a", "?m"], [Atom("events", ["?u", "?a", "?m"])]),
        column_names=("uid", "action", "ms"),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_events", "app", "shardpg", view, StorageLayout("events"),
            AccessMethod("scan"),
            sharding=ShardingSpec("uid", 8),   # hash on uid across the 8 instances
        ),
        rows=[{"uid": i % 200, "action": f"a{i % 7}", "ms": i} for i in range(2000)],
        indexes=("uid",),
    )
    print("== sharding (8 relational instances, 10 ms simulated latency/request)")
    print("   topology:", est.shard_configuration()["shardpg"]["shards"], "shards")

    for label, sql in (
        ("point (pruned)", "SELECT action FROM events WHERE uid = 17"),
        ("scan (fan-out)", "SELECT uid, action FROM events"),
        ("aggregate (per-shard partials)",
         "SELECT action, COUNT(uid) AS n FROM events GROUP BY action"),
    ):
        started = time.perf_counter()
        result = est.query(sql, dataset="app")
        elapsed = time.perf_counter() - started
        shards = result.summary()["shards"]
        print(
            f"   {label}: {elapsed * 1e3:6.1f} ms, {len(result.rows)} rows, "
            f"shards {shards['contacted']} contacted / {shards['pruned']} pruned"
        )


def replication() -> None:
    """Replication: 3 full copies, retry / failover / hedging knobs.

    Every replica is wrapped in a deterministic :class:`FaultInjector`: one
    drops 30 % of requests (absorbed by same-replica retries), one is a
    straggler with 40 ms latency spikes, and the policy hedges a backup
    request once the primary is slower than 5 ms — the first winner answers,
    so a spike costs the hedge delay instead of the spike.  Results are
    always bag-identical to a fault-free run; ``summary()["replicas"]``
    reports what the recovery layers actually did.
    """
    est = Estocada(parallelism=4)

    def replica_factory(name: str):
        index = int(name.rsplit(".", 1)[1])
        inner = RelationalStore(name, latency=0.002)
        if index == 0:
            # The preferred copy has gone spiky: 40 ms pauses on 60% of requests.
            return FaultInjector(inner, FaultProfile(seed=7, slow_rate=0.6, slow_seconds=0.04))
        if index == 1:
            # A flaky network path: ~30% of requests are dropped.
            return FaultInjector(inner, FaultProfile(seed=8, error_rate=0.3))
        return inner

    est.register_replicated_store(
        "reppg", 3, replica_factory,
        policy=ReplicationPolicy(
            max_retries=2,              # transient errors retried on the same replica
            hedge=True,                 # fire a backup against stragglers ...
            hedge_delay_seconds=0.005,  # ... once the primary is 5 ms overdue
            prefer_order=(0, 1, 2),     # "read-local": pin the preferred copy
        ),
    )
    est.register_relational_dataset(
        "app", [TableSchema("events", ("uid", "action", "ms"))]
    )
    view = ViewDefinition(
        "F_events",
        ConjunctiveQuery("F_events", ["?u", "?a", "?m"], [Atom("events", ["?u", "?a", "?m"])]),
        column_names=("uid", "action", "ms"),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_events", "app", "reppg", view, StorageLayout("events"), AccessMethod("scan"),
        ),
        rows=[{"uid": i % 100, "action": f"a{i % 5}", "ms": i} for i in range(1000)],
        indexes=("uid",),
    )
    print("== replication (3 full copies: one spiky, one flaky, one clean)")
    for _ in range(6):
        started = time.perf_counter()
        result = est.query("SELECT uid, action FROM events WHERE uid = 17", dataset="app")
        elapsed = time.perf_counter() - started
        activity = result.summary()["replicas"]
        print(
            f"   {elapsed * 1e3:6.1f} ms, {len(result.rows)} rows — "
            f"attempts {activity['attempts']}, retries {activity['retries']}, "
            f"hedges {activity['hedges']}, failovers {activity['failovers']}"
        )
    health = est.replication_configuration()["reppg"]["health"]
    for entry in health:
        latency = entry["ewma_latency_seconds"]
        print(
            f"   {entry['replica']}: healthy={entry['healthy']}, "
            f"ewma={'-' if latency is None else f'{latency * 1e3:.1f} ms'}, "
            f"hedge wins={entry['hedges_won']}"
        )




def multi_tenant_service() -> None:
    from repro.errors import OverloadedError
    from repro.service import QueryService, TenantPolicy

    est = Estocada()
    est.register_store("pg", RelationalStore("pg", latency=0.01))
    est.register_relational_dataset(
        "app", [TableSchema("events", ("uid", "action", "ms"))]
    )
    view = ViewDefinition(
        "F_events",
        ConjunctiveQuery("F_events", ["?u", "?a", "?m"], [Atom("events", ["?u", "?a", "?m"])]),
        column_names=("uid", "action", "ms"),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_events", "app", "pg", view, StorageLayout("events"), AccessMethod("scan"),
        ),
        rows=[{"uid": i % 100, "action": f"a{i % 5}", "ms": i} for i in range(1000)],
        indexes=("uid",),
    )

    print("== multi-tenant service (two tenants, one facade, 10 ms store latency)")
    service = QueryService(est, workers=2, default_policy=None)
    # An interactive tenant: small queue, tight per-query deadline, first in
    # line when both tenants have queries waiting.
    service.register_tenant(
        "web", TenantPolicy(max_concurrent=2, queue_depth=4, priority=0,
                            default_deadline_seconds=0.25),
    )
    # A batch tenant: rate-limited to 50 qps and dispatched after web.
    service.register_tenant(
        "reports", TenantPolicy(max_concurrent=1, queue_depth=8, priority=5,
                                rate_qps=50.0),
    )

    point = "SELECT uid, action FROM events WHERE uid = 17"
    scan = "SELECT uid, action, ms FROM events"
    tickets = [service.submit(scan, dataset="app", tenant="reports")]
    for _ in range(12):
        try:
            tickets.append(service.submit(point, dataset="app", tenant="web"))
        except OverloadedError:
            pass  # fast-rejected before any planning work: .reason says why
    for ticket in tickets:
        try:
            ticket.result(timeout=10)
        except Exception:
            pass
    summary = service.summary()
    for name in ("web", "reports"):
        tenant = summary["tenants"][name]
        print(
            f"   {name}: completed {tenant['completed']}, "
            f"shed {tenant['shed_queue_full'] + tenant['shed_rate_limited']}, "
            f"queue {tenant['queue_seconds'] * 1e3:.1f} ms vs engine {tenant['engine_seconds'] * 1e3:.1f} ms"
        )
    hits = summary["plan_cache"]["namespaces"]["web"]["hits"]
    print(f"   web plan-cache namespace: {hits} hits (isolated from reports' churn)")
    service.close()


def durability() -> None:
    """Durability: WAL + columnar segments behind every store.

    ``Estocada(durable_path=dir)`` (or ``REPRO_DURABLE=dir``) attaches a
    :class:`repro.stores.segment.DurableBacking` to each store as it is
    registered: every write is acknowledged only after an fsync'd
    write-ahead-log append, and full collections freeze into immutable
    columnar segment files carrying per-column min/max **zone maps** and
    dictionaries for low-cardinality string columns.  A fresh mediator
    pointed at the same directory recovers the data by replaying the
    manifest + WAL — here the second facade answers from disk without
    re-registering any rows.  Scans are served from the segments: the
    range predicate below excludes most segments by zone map alone, and
    ``result.summary()["segments"]`` counts what was skipped.
    ``est.compact()`` folds the WAL and tombstones into a new segment
    generation.
    """
    import shutil
    import tempfile

    directory = tempfile.mkdtemp(prefix="repro-quickstart-durable-")
    try:
        view = ViewDefinition(
            "F_events",
            ConjunctiveQuery("F_events", ["?u", "?a", "?m"], [Atom("events", ["?u", "?a", "?m"])]),
            column_names=("uid", "action", "ms"),
        )

        est = Estocada(durable_path=directory)
        est.register_store("pg", RelationalStore("pg"))
        est.register_relational_dataset(
            "app", [TableSchema("events", ("uid", "action", "ms"))]
        )
        est.register_fragment(
            StorageDescriptor(
                "F_events", "app", "pg", view, StorageLayout("events"), AccessMethod("scan"),
            ),
            rows=[{"uid": i % 100, "action": f"a{i % 5}", "ms": i} for i in range(20_000)],
        )
        print("== durability (WAL + columnar segments, zone-map pruned scans)")
        result = est.query(
            "SELECT uid, action, ms FROM events WHERE ms >= 19800", dataset="app"
        )
        segments = result.summary()["segments"]
        print(
            f"   1% range scan: {len(result.rows)} rows — segments "
            f"{segments['scanned']} scanned / {segments['skipped']} skipped, "
            f"{segments['rows_decoded']} rows decoded"
        )

        # A fresh mediator on the same directory recovers from disk alone:
        # register the same topology, but hand register_fragment no rows.
        recovered = Estocada(durable_path=directory)
        recovered.register_store("pg", RelationalStore("pg"))
        recovered.register_relational_dataset(
            "app", [TableSchema("events", ("uid", "action", "ms"))]
        )
        recovered.register_fragment(
            StorageDescriptor(
                "F_events", "app", "pg", view, StorageLayout("events"), AccessMethod("scan"),
            ),
        )
        result = recovered.query(
            "SELECT uid, action, ms FROM events WHERE ms >= 19800", dataset="app"
        )
        print(f"   recovered mediator answers from disk: {len(result.rows)} rows")
        reports = recovered.compact()
        print(f"   compacted to generation {reports['pg']['generation']}")
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
