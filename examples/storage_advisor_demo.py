"""Storage-advisor demo (the paper's demonstration step 4).

Starting from an untuned deployment (every fragment stored as-such, no
secondary indexes), the advisor analyses a weighted workload, recommends new
fragments (key-value projections for the key lookups, a materialized nested
join for the personalized search), and the example materializes them and
shows how the selected plans change.

Run with:  python examples/storage_advisor_demo.py
"""

from repro import Estocada
from repro.advisor import WorkloadQuery
from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, Constant, ViewDefinition
from repro.datamodel import TableSchema
from repro.stores import KeyValueStore, ParallelStore, RelationalStore
from repro.workloads import MarketplaceConfig, generate_marketplace


def view(name, head, body, columns):
    return ViewDefinition(name, ConjunctiveQuery(name, head, body), column_names=columns)


def build(data):
    est = Estocada()
    est.register_store("pg", RelationalStore("pg"))
    est.register_store("redis", KeyValueStore("redis"))
    est.register_store("spark", ParallelStore("spark"))
    est.register_relational_dataset(
        "shop",
        [
            TableSchema("users", ("uid", "name", "city", "payment", "preferred_category"), primary_key=("uid",)),
            TableSchema("purchases", ("uid", "sku", "category", "quantity", "price")),
            TableSchema("visits", ("uid", "sku", "category", "duration_ms")),
        ],
    )
    est.register_fragment(
        StorageDescriptor(
            "F_users", "shop", "pg",
            view("F_users", ["?u", "?n", "?c", "?p", "?pc"],
                 [Atom("users", ["?u", "?n", "?c", "?p", "?pc"])],
                 ("uid", "name", "city", "payment", "preferred_category")),
            StorageLayout("users"), AccessMethod("scan")),
        rows=[{"uid": u["uid"], "name": u["name"], "city": u["city"], "payment": u["payment"],
               "preferred_category": u["preferred_category"]} for u in data.users])
    est.register_fragment(
        StorageDescriptor(
            "F_purchases", "shop", "pg",
            view("F_purchases", ["?u", "?s", "?c", "?q", "?pr"],
                 [Atom("purchases", ["?u", "?s", "?c", "?q", "?pr"])],
                 ("uid", "sku", "category", "quantity", "price")),
            StorageLayout("purchases"), AccessMethod("scan")),
        rows=data.purchases())
    est.register_fragment(
        StorageDescriptor(
            "F_visits", "shop", "spark",
            view("F_visits", ["?u", "?s", "?c", "?d"], [Atom("visits", ["?u", "?s", "?c", "?d"])],
                 ("uid", "sku", "category", "duration_ms")),
            StorageLayout("visits"), AccessMethod("scan")),
        rows=[{"uid": v["uid"], "sku": v["sku"], "category": v["category"], "duration_ms": v["duration_ms"]}
              for v in data.weblog])
    return est


def main() -> None:
    data = generate_marketplace(MarketplaceConfig(users=200, products=300, orders=800, carts=150, log_lines=3000))
    est = build(data)

    prefs = ConjunctiveQuery("prefs_lookup", ["?pc"],
                             [Atom("users", [Constant(3), "?n", "?c", "?p", "?pc"])])
    personalized = ConjunctiveQuery(
        "personalized", ["?s"],
        [Atom("purchases", [Constant(3), "?s", "?c", "?q", "?pr"]),
         Atom("visits", [Constant(3), "?s", "?c2", "?d"])])
    workload = [WorkloadQuery(prefs, weight=10.0), WorkloadQuery(personalized, weight=4.0)]

    print("== advisor analysis of the workload")
    report = est.recommend_fragments(workload)
    print(f"   baseline estimated workload cost: {report.baseline_cost:.1f}")
    print(f"   estimated cost after additions:   {report.improved_cost:.1f} "
          f"(improvement {report.improvement_ratio():.0%})")
    for recommendation in report.additions:
        summary = recommendation.describe()
        print(f"   + {summary['fragment']}: {summary['reason']}")
        print(f"       target model {summary['target_model']} (store {summary['target_store']}), "
              f"estimated benefit {summary['benefit']:.1f}")
    if report.drops:
        print(f"   - candidates to drop: {report.drops}")

    print("== plan for the personalized search before accepting recommendations")
    print(est.explain(personalized).plan_text())

    # Accept the idea behind the join recommendation: materialize it in Spark.
    definition = ConjunctiveQuery(
        "F_user_product", ["?u", "?s", "?c", "?d"],
        [Atom("purchases", ["?u", "?s", "?c", "?q", "?pr"]), Atom("visits", ["?u", "?s", "?c2", "?d"])])
    by_user_sku = {}
    for p in data.purchases():
        by_user_sku.setdefault((p["uid"], p["sku"]), p)
    rows = [
        {"uid": v["uid"], "sku": v["sku"], "category": by_user_sku[(v["uid"], v["sku"])]["category"],
         "duration_ms": v["duration_ms"]}
        for v in data.weblog if (v["uid"], v["sku"]) in by_user_sku
    ]
    est.register_fragment(
        StorageDescriptor(
            "F_user_product", "shop", "spark",
            ViewDefinition("F_user_product", definition, column_names=("uid", "sku", "category", "duration_ms")),
            StorageLayout("user_product"), AccessMethod("scan")),
        rows=rows, indexes=("uid",))

    print("== plan for the personalized search after materializing the recommendation")
    print(est.explain(personalized).plan_text())
    result = est.query(personalized)
    print(f"   executed via {sorted(result.store_breakdown)}; {len(result.rows)} answers")


if __name__ == "__main__":
    main()
