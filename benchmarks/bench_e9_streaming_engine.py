"""E9 — the streaming batched engine and the rewrite/plan cache.

Two claims of the engine refactor are measured on the marketplace workload
and written to ``BENCH_e9.json`` as a trajectory file:

1. **Repeated-template queries**: with the plan cache warm, a repeated query
   skips the whole PACB chase/backchase pipeline and the planner; the target
   is a ≥ 2x end-to-end speedup over the cold path (cache cleared before
   every run).
2. **Streaming execution**: batches flow through the operators instead of
   fully materialized row lists, so a LIMIT query abandons the pipeline
   early — the per-store row counters show the saving — and the batch size
   does not change results, only the number of batches.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.core import Atom, ConjunctiveQuery, Constant

from conftest import (
    add_materialized_user_product_fragment,
    add_prefs_kv_fragment,
    add_purchases_fragment,
    add_users_fragment,
    add_visits_fragment,
    base_estocada,
)

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_e9.json"
ITERATIONS = 30


def _build(data):
    est = base_estocada()
    add_users_fragment(est, data)
    add_prefs_kv_fragment(est, data)
    add_purchases_fragment(est, data)
    add_visits_fragment(est, data)
    add_materialized_user_product_fragment(est, data)
    return est


def _query(uid):
    """The personalized purchases ⋈ visits template of the demo scenario."""
    return ConjunctiveQuery(
        "personalized", ["?s", "?d"],
        [Atom("purchases", [Constant(uid), "?s", "?c", "?q", "?pr"]),
         Atom("visits", [Constant(uid), "?s", "?c2", "?d"])],
    )


def _time_queries(est, query, iterations, cold):
    """Per-iteration wall-clock of est.query(); cold clears the cache first."""
    trajectory = []
    for _ in range(iterations):
        if cold:
            est.clear_plan_cache()
        started = time.perf_counter()
        result = est.query(query)
        trajectory.append(time.perf_counter() - started)
    return trajectory, result


def test_e9_report(market_data, capsys):
    est = _build(market_data)
    query = _query(36)

    # Warm-up: materialize store caches/statistics on both paths equally.
    est.query(query)

    cold_trajectory, cold_result = _time_queries(est, query, ITERATIONS, cold=True)
    warm_trajectory, warm_result = _time_queries(est, query, ITERATIONS, cold=False)
    assert warm_result.cache_hit and not cold_result.cache_hit
    assert warm_result.rows == cold_result.rows

    cold_mean = statistics.mean(cold_trajectory)
    warm_mean = statistics.mean(warm_trajectory)
    speedup = cold_mean / warm_mean if warm_mean else float("inf")

    # Streaming early-exit: a LIMIT query must touch fewer rows than the
    # full query (the old materializing engine always computed everything).
    est_limit = _build(market_data)
    full = est_limit.query("SELECT uid, sku FROM purchases", dataset="shop")
    full_returned = sum(b.rows_returned for b in full.store_breakdown.values())
    limited = est_limit.query("SELECT uid, sku FROM purchases LIMIT 5", dataset="shop")
    limited_returned = sum(b.rows_returned for b in limited.store_breakdown.values())

    report = {
        "benchmark": "e9_streaming_engine",
        "iterations": ITERATIONS,
        "cold": {
            "mean_seconds": cold_mean,
            "median_seconds": statistics.median(cold_trajectory),
            "trajectory_seconds": cold_trajectory,
        },
        "warm": {
            "mean_seconds": warm_mean,
            "median_seconds": statistics.median(warm_trajectory),
            "trajectory_seconds": warm_trajectory,
        },
        "speedup_warm_over_cold": speedup,
        "cache_stats": dict(est.cache_stats()),
        "result_rows": len(warm_result.rows),
        "batches_per_query": warm_result.batches,
        "limit_pushdown": {
            "full_rows_returned_by_stores": full_returned,
            "limit5_rows_returned_by_stores": limited_returned,
        },
    }
    RESULT_FILE.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print("\n[E9] streaming batched engine + plan cache (marketplace workload)")
        print(f"  cold (cache cleared):  {cold_mean * 1e3:8.3f} ms/query")
        print(f"  warm (cache hit):      {warm_mean * 1e3:8.3f} ms/query")
        print(f"  speedup:               {speedup:8.1f}x")
        print(f"  LIMIT 5 store rows:    {limited_returned} vs full {full_returned}")
        print(f"  trajectory written to  {RESULT_FILE.name}")

    # Acceptance: repeated-template queries ≥ 2x via the plan cache.
    assert speedup >= 2.0, f"plan cache speedup {speedup:.2f}x below 2x"
    # Streaming early-exit touches no more rows than full evaluation.
    assert limited_returned <= full_returned


def test_e9_batch_size_invariance(market_data):
    """Batch size must not change answers, only the batch count."""
    from repro.runtime import ExecutionEngine

    est = _build(market_data)
    explanation = est.explain(_query(36))
    root = explanation.chosen.plan.root
    reference = None
    batch_counts = {}
    for batch_size in (1, 7, 1024):
        result = ExecutionEngine(batch_size=batch_size).execute(root)
        rows = sorted(tuple(sorted(r.items())) for r in result.rows)
        batch_counts[batch_size] = result.batches
        if reference is None:
            reference = rows
        assert rows == reference
    assert batch_counts[1] >= batch_counts[1024]
