"""E18 — durable columnar segments: zone-map pruning vs the in-memory heap walk.

The same 1%-selectivity scan runs over the same rows deployed two ways and
the wall-clock trajectories are written to ``BENCH_e18.json``:

* **memory** — a plain in-memory relational store: every scan walks the
  whole heap and evaluates the predicate on every row;
* **durable** — the same store write-through attached to a WAL + columnar
  segment backing: the scan is served from frozen segments, and segments
  whose zone maps provably exclude the predicate are skipped without
  touching their column blocks.

The fact table's ``ts`` column increases monotonically, so consecutive
segments hold disjoint ``ts`` ranges — the natural time-series layout where
zone maps shine.  A second workload hits the dictionary fast path: equality
on a low-cardinality string column is evaluated on dictionary codes, so only
matching rows are ever decoded.  The report also times crash recovery
(replaying the manifest + WAL into a cold store) and compaction.

Acceptance: both paths return the identical bag, and the durable
segment-skipping scan is ≥ 5x the in-memory full scan on the
1%-selectivity workload (wall-clock threshold skipped under
``REPRO_BENCH_SMOKE=1``).
"""

from __future__ import annotations

import json
import os
import shutil
import statistics
import tempfile
import time
from collections import Counter
from pathlib import Path

from repro.stores import RelationalStore
from repro.stores.base import Predicate, ScanRequest
from repro.stores.segment import DurableBacking

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_e18.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
ITERATIONS = 2 if SMOKE else 7
# ROWS is an exact multiple of SEGMENT_ROWS so every row freezes into a
# segment — the surviving 1% then lives in real frozen segments instead of
# the unfrozen tail, and the skip counters describe the whole table.
ROWS = 20_000 if SMOKE else 240_000
SEGMENT_ROWS = 2_000 if SMOKE else 4_000
CHUNK = 10_000

COLUMNS = ("ts", "uid", "category", "price")
# 1% of rows sit above the threshold; they all land in the last ~1% of
# segments, so zone maps prune ~99% of the frozen data.
THRESHOLD = int(ROWS * 0.99)
RARE_EVERY = 100  # 1% of rows carry the rare category


def _rows():
    for ts in range(ROWS):
        yield {
            "ts": ts,
            "uid": (ts * 2_654_435_761) % 10_000,
            "category": "rare" if ts % RARE_EVERY == 0 else f"common{ts % 7}",
            "price": float((ts * 37) % 1_000),
        }


def _load(store) -> None:
    store.create_table("facts", COLUMNS)
    chunk = []
    for row in _rows():
        chunk.append(row)
        if len(chunk) >= CHUNK:
            store.insert("facts", chunk)
            chunk = []
    if chunk:
        store.insert("facts", chunk)


WORKLOADS = {
    # The acceptance workload: a 1%-selectivity range scan on the zone-mapped
    # time column.
    "one_percent_ts_scan": (Predicate("ts", ">=", THRESHOLD),),
    # Dictionary fast path: equality on a low-cardinality string column is
    # matched on codes, decoding only the 1% of rows that hit.
    "rare_category_equality": (Predicate("category", "=", "rare"),),
}


def _scan(store, predicates):
    request = ScanRequest("facts", predicates=tuple(predicates))
    batches, metrics = store._execute_batches(request, COLUMNS, 1_024)
    rows = [row for batch in batches for row in batch.rows]
    return rows, metrics


def _measure(store, predicates):
    _scan(store, predicates)  # warm (decoded-column caches, like a hot store)
    trajectory = []
    for _ in range(ITERATIONS):
        started = time.perf_counter()
        rows, metrics = _scan(store, predicates)
        trajectory.append(time.perf_counter() - started)
    return rows, metrics, trajectory


def test_e18_report(capsys):
    directory = tempfile.mkdtemp(prefix="repro-bench-e18-")
    try:
        memory = RelationalStore("memory")
        _load(memory)

        durable = RelationalStore("durable")
        backing = DurableBacking(
            os.path.join(directory, "pg"), segment_rows=SEGMENT_ROWS
        )
        load_started = time.perf_counter()
        durable.attach_durable(backing)
        _load(durable)
        load_seconds = time.perf_counter() - load_started
        frozen = backing.describe()["collections"]["facts"]

        workloads: dict[str, dict] = {}
        for name, predicates in WORKLOADS.items():
            memory_rows, _, memory_trajectory = _measure(memory, predicates)
            durable_rows, metrics, durable_trajectory = _measure(durable, predicates)
            assert Counter(durable_rows) == Counter(memory_rows), (
                f"durable scan diverged from the in-memory heap walk on {name}"
            )
            memory_mean = statistics.mean(memory_trajectory)
            durable_mean = statistics.mean(durable_trajectory)
            workloads[name] = {
                "rows_returned": len(durable_rows),
                "memory_mean_seconds": memory_mean,
                "durable_mean_seconds": durable_mean,
                "memory_trajectory_seconds": memory_trajectory,
                "durable_trajectory_seconds": durable_trajectory,
                "speedup": memory_mean / durable_mean,
                "segments_scanned": metrics.segments_scanned,
                "segments_skipped": metrics.segments_skipped,
                "rows_decoded": metrics.rows_decoded,
            }

        # Crash recovery: replay manifest + WAL into a cold store.
        recovery_started = time.perf_counter()
        recovered = RelationalStore("recovered")
        recovered.attach_durable(
            DurableBacking(os.path.join(directory, "pg"), segment_rows=SEGMENT_ROWS)
        )
        recovery_seconds = time.perf_counter() - recovery_started
        assert recovered.collection_size("facts") == ROWS

        compact_started = time.perf_counter()
        compact_report = durable.compact_durable()
        compact_seconds = time.perf_counter() - compact_started

        report = {
            "benchmark": "e18_durable_segments",
            "iterations": ITERATIONS,
            "smoke": SMOKE,
            "rows": ROWS,
            "segment_rows": SEGMENT_ROWS,
            "segments_frozen": frozen["segments"],
            "load_seconds": load_seconds,
            "recovery_seconds": recovery_seconds,
            "compact_seconds": compact_seconds,
            "compact_generation": compact_report["generation"],
            "workloads": workloads,
        }
        RESULT_FILE.write_text(json.dumps(report, indent=2) + "\n")

        with capsys.disabled():
            print("\n[E18] durable segment scans vs in-memory heap walk")
            print(
                f"  {ROWS} rows, {frozen['segments']} segments of {SEGMENT_ROWS}; "
                f"load {load_seconds:.2f}s, recovery {recovery_seconds:.2f}s, "
                f"compact {compact_seconds:.2f}s"
            )
            for name, entry in workloads.items():
                print(
                    f"  {name:24s} {entry['memory_mean_seconds'] * 1e3:8.2f} ms → "
                    f"{entry['durable_mean_seconds'] * 1e3:8.2f} ms  "
                    f"({entry['speedup']:.1f}x, skipped "
                    f"{entry['segments_skipped']}/{entry['segments_skipped'] + entry['segments_scanned']}"
                    f" segments, decoded {entry['rows_decoded']} rows)"
                )
            print(f"  trajectory written to  {RESULT_FILE.name}")

        # Pruning must be real regardless of wall clock: the 1% scan touches
        # only the tail-end segments.
        one_percent = workloads["one_percent_ts_scan"]
        total_segments = one_percent["segments_scanned"] + one_percent["segments_skipped"]
        assert one_percent["segments_skipped"] >= int(total_segments * 0.9)

        if not SMOKE:
            # Acceptance: ≥ 5x from zone-map segment skipping on the
            # 1%-selectivity scan over ≥ 200k rows.
            speedup = one_percent["speedup"]
            assert speedup >= 5.0, f"zone-map speedup {speedup:.2f}x below 5x"
            # The dictionary fast path must never lose to the heap walk.
            assert workloads["rare_category_equality"]["speedup"] >= 1.0
    finally:
        shutil.rmtree(directory, ignore_errors=True)
