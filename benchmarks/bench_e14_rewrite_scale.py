"""E14 — rewrite-at-scale: indexed, memoized PACB over thousands of fragments.

The same rewriting workload runs against growing fragment catalogs (100 /
1 000 / 10 000 identity views, one per pivot relation) in two modes and the
per-query rewrite latencies are written to ``BENCH_e14.json``:

* **indexed** (``REPRO_REWRITE_INDEX=1``, the default) — the relation-
  signature index selects the handful of candidate views whose definitions
  lie in the TGD-reachability closure of the query's relations, and the
  chase dispatches constraints through the same inverted index;
* **unindexed** (``REPRO_REWRITE_INDEX=0``) — the PR 5 seed behaviour: every
  registered view feeds the backchase and every constraint is scanned each
  chase round, so rewriting degrades linearly with catalog size.

Each query joins ≤ 3 distinct relations, so the indexed mode does O(query)
work regardless of catalog size.  Result memoization stays on in both modes
(every measured query is distinct, so this isolates the index, not the
memos).  Acceptance (full run): both modes find the same rewritings, the
indexed mode is ≥ 10x faster at 10 000 fragments, and its latency grows
≤ 3x from 1 000 to 10 000 fragments (near-flat; wall-clock thresholds are
skipped under ``REPRO_BENCH_SMOKE=1``).
"""

from __future__ import annotations

import json
import os
import random
import statistics
import time
from pathlib import Path

from repro.core import (
    Atom,
    ConjunctiveQuery,
    Rewriter,
    ViewDefinition,
    clear_memos,
    memo_stats,
)

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_e14.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
CATALOG_SIZES = [50, 200] if SMOKE else [100, 1_000, 10_000]
QUERIES_PER_SIZE = 2 if SMOKE else 3

MODES = {
    "indexed": {"REPRO_REWRITE_INDEX": "1", "REPRO_REWRITE_MEMO": "1"},
    "unindexed": {"REPRO_REWRITE_INDEX": "0", "REPRO_REWRITE_MEMO": "1"},
}


def _catalog(size: int) -> list[ViewDefinition]:
    """One identity view (fragment) per binary pivot relation."""
    views = []
    for i in range(size):
        name = f"frag{i}"
        views.append(
            ViewDefinition(
                name,
                ConjunctiveQuery(name, ["?a", "?b"], [Atom(f"rel{i}", ["?a", "?b"])]),
            )
        )
    return views


def _queries(size: int) -> list[ConjunctiveQuery]:
    """Distinct ≤3-relation chain queries over random relations of the catalog."""
    rng = random.Random(size * 7 + 3)
    queries = []
    for q in range(QUERIES_PER_SIZE):
        length = min(3, 1 + q % 3)
        relations = rng.sample(range(size), length)
        variables = [f"?x{i}" for i in range(length + 1)]
        body = [
            Atom(f"rel{relations[i]}", [variables[i], variables[i + 1]])
            for i in range(length)
        ]
        queries.append(
            ConjunctiveQuery(f"Q{size}_{q}", [variables[0], variables[length]], body)
        )
    return queries


def _rewriting_shapes(outcome) -> set[frozenset[str]]:
    """Order/renaming-insensitive fingerprint: the view-name sets used."""
    return {
        frozenset(atom.relation for atom in rewriting.body)
        for rewriting in outcome.rewritings
    }


def _with_mode(env):
    saved = {key: os.environ.get(key) for key in env}
    os.environ.update(env)
    return saved


def _restore(saved):
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


def test_e14_report(capsys):
    report_sizes: dict[str, dict] = {}
    for size in CATALOG_SIZES:
        views = _catalog(size)
        queries = _queries(size)
        by_mode: dict[str, dict] = {}
        shapes: dict[str, list[set[frozenset[str]]]] = {}
        for mode, env in MODES.items():
            saved = _with_mode(env)
            try:
                clear_memos()
                rewriter = Rewriter(views=views)
                latencies = []
                mode_shapes = []
                candidates_selected = []
                for query in queries:
                    started = time.perf_counter()
                    outcome = rewriter.rewrite(query)
                    latencies.append(time.perf_counter() - started)
                    mode_shapes.append(_rewriting_shapes(outcome))
                    selected = next(
                        (
                            int(note.split("selected ")[1].split(" of")[0])
                            for note in outcome.notes
                            if "selected" in note
                        ),
                        len(views),
                    )
                    candidates_selected.append(selected)
                shapes[mode] = mode_shapes
                by_mode[mode] = {
                    "mean_seconds": statistics.mean(latencies),
                    "median_seconds": statistics.median(latencies),
                    "latencies_seconds": latencies,
                    "candidates_selected": candidates_selected,
                    "memo": memo_stats(),
                }
            finally:
                _restore(saved)
        # Differential guarantee: both modes find the same rewritings.
        assert shapes["indexed"] == shapes["unindexed"], f"divergence at {size} fragments"
        by_mode["speedup"] = (
            by_mode["unindexed"]["mean_seconds"] / by_mode["indexed"]["mean_seconds"]
        )
        report_sizes[str(size)] = by_mode

    largest = str(CATALOG_SIZES[-1])
    growth = (
        report_sizes[largest]["indexed"]["mean_seconds"]
        / report_sizes[str(CATALOG_SIZES[-2])]["indexed"]["mean_seconds"]
    )
    report = {
        "benchmark": "e14_rewrite_scale",
        "smoke": SMOKE,
        "queries_per_size": QUERIES_PER_SIZE,
        "catalog_sizes": CATALOG_SIZES,
        "sizes": report_sizes,
        "indexed_growth_last_step": growth,
    }
    RESULT_FILE.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print("\n[E14] rewrite latency vs catalog size (indexed vs unindexed)")
        for size in CATALOG_SIZES:
            entry = report_sizes[str(size)]
            print(
                f"  {size:6d} fragments  "
                f"{entry['indexed']['mean_seconds'] * 1e3:9.2f} ms indexed  "
                f"{entry['unindexed']['mean_seconds'] * 1e3:9.2f} ms unindexed  "
                f"({entry['speedup']:.1f}x)"
            )
        print(
            f"  indexed growth {CATALOG_SIZES[-2]} → {CATALOG_SIZES[-1]}: {growth:.2f}x"
        )
        print(f"  trajectory written to  {RESULT_FILE.name}")

    if not SMOKE:
        # Acceptance: ≥ 10x at the largest catalog, near-flat indexed growth.
        speedup = report_sizes[largest]["speedup"]
        assert speedup >= 10.0, f"indexed speedup {speedup:.1f}x below 10x at {largest}"
        assert growth <= 3.0, f"indexed latency grew {growth:.2f}x from 1k to 10k"
