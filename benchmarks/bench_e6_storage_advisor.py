"""E6 — Demo step 4: storage-advisor recommendations and their impact on plans.

Given the marketplace workload, the advisor recommends new fragments
(key-value fragments for the key lookups, a materialized nested join for the
personalized search).  Materializing the accepted recommendations must change
the plans the cost model selects and reduce the estimated workload cost.
"""

from __future__ import annotations

from repro.advisor import WorkloadQuery
from repro.core import Atom, ConjunctiveQuery, Constant

from conftest import (
    add_purchases_fragment,
    add_users_fragment,
    add_visits_fragment,
    add_materialized_user_product_fragment,
    add_prefs_kv_fragment,
    base_estocada,
)


def _workload():
    prefs = ConjunctiveQuery(
        "prefs_lookup", ["?pc"], [Atom("users", [Constant(3), "?n", "?c", "?p", "?pc"])]
    )
    personalized = ConjunctiveQuery(
        "personalized", ["?s"],
        [Atom("purchases", [Constant(3), "?s", "?c", "?q", "?pr"]),
         Atom("visits", [Constant(3), "?s", "?c2", "?d"])],
    )
    return [WorkloadQuery(prefs, weight=10.0), WorkloadQuery(personalized, weight=4.0)]


def _build(data):
    # The advisor runs against the *untuned* first deployment: fragments are
    # stored as-such, without secondary indexes, exactly the state in which the
    # scenario's development team starts investigating alternatives.
    est = base_estocada()
    add_users_fragment(est, data, indexes=())
    add_purchases_fragment(est, data, indexes=())
    add_visits_fragment(est, data, indexes=())
    return est


def test_e6_advisor_recommendation_time(benchmark, market_data):
    est = _build(market_data)
    report = benchmark(lambda: est.recommend_fragments(_workload()))
    assert report.baseline_cost > 0


def test_e6_report(market_data, capsys):
    est = _build(market_data)
    report = est.recommend_fragments(_workload())

    # Materialize the advisor's idea (key-value prefs + nested join fragment)
    # and observe the plan change for the personalized-search query.
    before_plan = est.explain(
        ConjunctiveQuery(
            "personalized", ["?s"],
            [Atom("purchases", [Constant(5), "?s", "?c", "?q", "?pr"]),
             Atom("visits", [Constant(5), "?s", "?c2", "?d"])],
        )
    )
    before_fragments = {a.relation for a in before_plan.chosen.rewriting.body}
    add_prefs_kv_fragment(est, market_data)
    add_materialized_user_product_fragment(est, market_data)
    after_plan = est.explain(
        ConjunctiveQuery(
            "personalized", ["?s"],
            [Atom("purchases", [Constant(5), "?s", "?c", "?q", "?pr"]),
             Atom("visits", [Constant(5), "?s", "?c2", "?d"])],
        )
    )
    after_fragments = {a.relation for a in after_plan.chosen.rewriting.body}
    with capsys.disabled():
        print("\n[E6] storage advisor (demo step 4)")
        print(f"  baseline workload cost estimate: {report.baseline_cost:.1f}")
        print(f"  estimated cost after additions:  {report.improved_cost:.1f}"
              f" (improvement {report.improvement_ratio():.1%})")
        for recommendation in report.additions:
            summary = recommendation.describe()
            print(f"  + recommend {summary['fragment']} -> {summary['target_model']}"
                  f" (store {summary['target_store']}), benefit {summary['benefit']:.1f}")
        print(f"  - droppable fragments: {report.drops}")
        print(f"  personalized-search plan before: {sorted(before_fragments)}")
        print(f"  personalized-search plan after : {sorted(after_fragments)}")
    assert report.additions
    assert report.improved_cost <= report.baseline_cost
    assert before_fragments == {"F_purchases", "F_visits"}
    assert after_fragments == {"F_user_product"}
