"""E16 — incremental fragment maintenance vs re-materialization.

A small-delta DML workload (a handful of rows per statement) lands on a base
relation backing two materialized fragments: the relation itself and a
users ⋈ events join view.  The same statement sequence runs twice:

* **incremental** (default) — each write propagates through the fragments'
  defining queries with the select/project/join delta rules, so maintenance
  work scales with ``|Δ|``;
* **recompute** (``REPRO_INCREMENTAL_MAINTENANCE=0``) — each write
  re-evaluates the definition and re-materializes the whole fragment, so
  maintenance work scales with ``|fragment|`` regardless of how small the
  delta is.

On a ~20k-row base with 5-row writes the incremental path must win by ≥5×
wall clock.  Results land in ``BENCH_e16.json``; ``REPRO_BENCH_SMOKE=1``
(CI) shrinks the base relation and skips the speedup assertion.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import Estocada
from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, ViewDefinition
from repro.datamodel import TableSchema
from repro.stores import RelationalStore

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_e16.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

USERS = 100 if SMOKE else 400
EVENTS = 2_000 if SMOKE else 20_000
WRITES = 6 if SMOKE else 20
ROWS_PER_WRITE = 5
MIN_SPEEDUP = 5.0


def _view(name, head, body, columns):
    return ViewDefinition(name, ConjunctiveQuery(name, head, body), column_names=columns)


def _user_rows():
    return [
        {"uid": uid, "name": f"user-{uid}", "city": ("paris", "lyon", "nice")[uid % 3]}
        for uid in range(USERS)
    ]


def _event_rows():
    return [
        {"uid": i % USERS, "kind": ("view", "click", "buy")[i % 3], "val": i % 97}
        for i in range(EVENTS)
    ]


def _build() -> Estocada:
    """One relational store, writable users/events, plain + join fragments."""
    est = Estocada()
    est.register_store("pg", RelationalStore("pg"))
    est.register_relational_dataset(
        "app",
        [
            TableSchema("users", ("uid", "name", "city")),
            TableSchema("events", ("uid", "kind", "val")),
        ],
    )
    est.load_relation("users", _user_rows(), dataset="app")
    est.load_relation("events", _event_rows(), dataset="app")
    est.register_fragment(
        StorageDescriptor(
            "F_events", "app", "pg",
            _view("F_events", ["?u", "?k", "?v"], [Atom("events", ["?u", "?k", "?v"])],
                  ("uid", "kind", "val")),
            StorageLayout("events"), AccessMethod("scan"),
        ),
        indexes=("uid",),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_user_events", "app", "pg",
            _view("F_user_events", ["?u", "?n", "?k", "?v"],
                  [Atom("users", ["?u", "?n", "?c"]), Atom("events", ["?u", "?k", "?v"])],
                  ("uid", "name", "kind", "val")),
            StorageLayout("user_events"), AccessMethod("scan"),
        ),
        indexes=("uid",),
    )
    return est


def _write_batches():
    return [
        [
            {"uid": (batch * ROWS_PER_WRITE + i) % USERS, "kind": "buy", "val": batch}
            for i in range(ROWS_PER_WRITE)
        ]
        for batch in range(WRITES)
    ]


def _run_workload(est: Estocada) -> float:
    """Apply the write batches eagerly; return maintenance wall clock."""
    started = time.perf_counter()
    for batch in _write_batches():
        est.insert("events", batch)
    return time.perf_counter() - started


def _served_count(est: Estocada) -> int:
    result = est.query("SELECT uid, kind, val FROM events WHERE kind = 'buy'", dataset="app")
    return len(result.rows)


def test_e16_report(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_INCREMENTAL_MAINTENANCE", raising=False)
    incremental_est = _build()
    incremental_seconds = _run_workload(incremental_est)
    incremental_served = _served_count(incremental_est)

    monkeypatch.setenv("REPRO_INCREMENTAL_MAINTENANCE", "0")
    recompute_est = _build()
    recompute_seconds = _run_workload(recompute_est)
    recompute_served = _served_count(recompute_est)
    monkeypatch.delenv("REPRO_INCREMENTAL_MAINTENANCE")

    # Both modes must converge to the same served state (the differential
    # harness checks this exhaustively; here it guards the measurement).
    assert incremental_served == recompute_served

    speedup = recompute_seconds / incremental_seconds if incremental_seconds else float("inf")
    report = {
        "benchmark": "e16_incremental_maintenance",
        "smoke": SMOKE,
        "base_rows": {"users": USERS, "events": EVENTS},
        "fragments": ["F_events", "F_user_events"],
        "writes": WRITES,
        "rows_per_write": ROWS_PER_WRITE,
        "incremental_seconds": incremental_seconds,
        "recompute_seconds": recompute_seconds,
        "speedup": speedup,
        "per_write_ms": {
            "incremental": incremental_seconds / WRITES * 1e3,
            "recompute": recompute_seconds / WRITES * 1e3,
        },
    }
    RESULT_FILE.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print(f"\n[E16] incremental maintenance vs re-materialization "
              f"({EVENTS} base rows, {WRITES} writes x {ROWS_PER_WRITE} rows)")
        print(f"  incremental: {incremental_seconds * 1e3:8.1f} ms total "
              f"({incremental_seconds / WRITES * 1e3:6.2f} ms/write)")
        print(f"  recompute:   {recompute_seconds * 1e3:8.1f} ms total "
              f"({recompute_seconds / WRITES * 1e3:6.2f} ms/write)")
        print(f"  speedup:     {speedup:6.1f}x")
        print(f"  report written to {RESULT_FILE.name}")

    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"incremental maintenance only {speedup:.1f}x faster than "
            f"re-materialization (need >= {MIN_SPEEDUP}x)"
        )


def test_e16_small_delta_work_scales_with_delta():
    """Store rows written by one small-delta maintenance stay O(|delta|)."""
    est = _build()
    est.set_write_policy("deferred")
    est.insert("events", [{"uid": 1, "kind": "buy", "val": 1}] * 3)
    written = est.maintain()
    # 3 rows hit F_events and 3 join rows hit F_user_events — nowhere near
    # the tens of thousands a re-materialization would rewrite.
    assert written <= 3 * 2 * ROWS_PER_WRITE
