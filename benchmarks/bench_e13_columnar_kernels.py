"""E13 — the native columnar batch pipeline: compiled kernels and fusion.

Three execution paths answer the same workloads over the same deployment and
the per-query wall-clock trajectories are written to ``BENCH_e13.json``:

* **interpreted** (``REPRO_COMPILED=0``) — the PR 4 dict-boundary baseline:
  stores return dict rows, the runtime repacks them into batches and
  re-interprets every residual filter/projection per row;
* **compiled** (``REPRO_COMPILED=1 REPRO_FUSED=0``) — stores stream native
  row-tuple ``RowBatch`` objects end-to-end and every residual step runs as
  a per-batch kernel, but each step is its own single-stage pipeline;
* **fused** (``REPRO_COMPILED=1 REPRO_FUSED=1``, the default) — the whole
  Filter → Project → Output (→ LIMIT) chain collapses into one operator.

Workloads: a scan-heavy filter/project query, a mediator hash join
(vectorized build/probe on the compiled paths), and a grouped aggregation.
The plan cache is warmed once so the trajectories measure execution, not
rewriting.  Acceptance: every mode returns the identical bag, and the
compiled+fused path is ≥ 2x the interpreted baseline on the scan-heavy
workload (wall-clock threshold skipped under ``REPRO_BENCH_SMOKE=1``).
"""

from __future__ import annotations

import json
import os
import random
import statistics
import time
from collections import Counter
from pathlib import Path

from repro import Estocada
from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, ViewDefinition
from repro.datamodel import TableSchema
from repro.stores import RelationalStore

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_e13.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
ITERATIONS = 3 if SMOKE else 15
PURCHASES = 2_000 if SMOKE else 30_000
VISITS = 1_000 if SMOKE else 8_000

MODES = {
    "interpreted": {"REPRO_COMPILED": "0", "REPRO_FUSED": "1"},
    "compiled": {"REPRO_COMPILED": "1", "REPRO_FUSED": "0"},
    "fused": {"REPRO_COMPILED": "1", "REPRO_FUSED": "1"},
}

WORKLOADS = {
    # Residual ">=" filter + projection + output shaping: the pure operator
    # hot path the kernel compiler targets (the filter keeps ~10% of rows).
    "scan_filter_project": "SELECT uid, sku, price FROM purchases WHERE price >= 900",
    # Mediator-side equi-join: vectorized hash build/probe on the compiled
    # paths, per-row tuple keys on the interpreted one.
    "join_purchases_visits": (
        "SELECT p.sku, v.duration_ms FROM purchases p, visits v "
        "WHERE p.uid = v.uid AND p.sku = v.sku"
    ),
    # Blocking grouped aggregation fed by the native scan stream.
    "aggregate_by_category": (
        "SELECT category, COUNT(sku) AS n, SUM(price) AS total "
        "FROM purchases GROUP BY category"
    ),
}


def _view(name, head, body, columns):
    return ViewDefinition(name, ConjunctiveQuery(name, head, body), column_names=columns)


def _build() -> Estocada:
    rng = random.Random(13)
    est = Estocada()
    est.register_store("pg", RelationalStore("pg"))
    # Visits live in a second store so the join stays *mediator-side* (a
    # single store would absorb it as a delegated store-side JoinRequest and
    # the vectorized hash join would never run).
    est.register_store("pg2", RelationalStore("pg2"))
    est.register_relational_dataset(
        "shop",
        [
            TableSchema("purchases", ("uid", "sku", "category", "price")),
            TableSchema("visits", ("uid", "sku", "duration_ms")),
        ],
    )
    est.register_fragment(
        StorageDescriptor(
            "F_purchases", "shop", "pg",
            _view("F_purchases", ["?u", "?s", "?c", "?p"],
                  [Atom("purchases", ["?u", "?s", "?c", "?p"])],
                  ("uid", "sku", "category", "price")),
            StorageLayout("purchases"), AccessMethod("scan"),
        ),
        rows=[
            {
                "uid": rng.randrange(1000),
                "sku": f"s{rng.randrange(200)}",
                "category": f"c{rng.randrange(12)}",
                "price": float(rng.randrange(1000)),
            }
            for _ in range(PURCHASES)
        ],
    )
    est.register_fragment(
        StorageDescriptor(
            "F_visits", "shop", "pg2",
            _view("F_visits", ["?u", "?s", "?d"],
                  [Atom("visits", ["?u", "?s", "?d"])],
                  ("uid", "sku", "duration_ms")),
            StorageLayout("visits"), AccessMethod("scan"),
        ),
        rows=[
            {
                "uid": rng.randrange(1000),
                "sku": f"s{rng.randrange(200)}",
                "duration_ms": rng.randrange(60_000),
            }
            for _ in range(VISITS)
        ],
    )
    return est


def _bag(rows):
    return Counter(tuple(sorted(r.items())) for r in rows)


def _with_mode(env):
    saved = {key: os.environ.get(key) for key in env}
    os.environ.update(env)
    return saved


def _restore(saved):
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


def test_e13_report(capsys):
    est = _build()
    report_modes: dict[str, dict] = {name: {"workloads": {}} for name in MODES}
    bags: dict[str, dict[str, Counter]] = {name: {} for name in WORKLOADS}

    for mode, env in MODES.items():
        saved = _with_mode(env)
        try:
            for workload, sql in WORKLOADS.items():
                est.query(sql, dataset="shop")  # warm the plan cache + stores
                trajectory = []
                for _ in range(ITERATIONS):
                    started = time.perf_counter()
                    result = est.query(sql, dataset="shop")
                    trajectory.append(time.perf_counter() - started)
                bags[workload][mode] = _bag(result.rows)
                report_modes[mode]["workloads"][workload] = {
                    "mean_seconds": statistics.mean(trajectory),
                    "median_seconds": statistics.median(trajectory),
                    "trajectory_seconds": trajectory,
                    "rows": len(result.rows),
                    "execution": {
                        key: value
                        for key, value in result.summary()["execution"].items()
                        if key != "operators"
                    },
                    "operators": result.summary()["execution"]["operators"],
                }
        finally:
            _restore(saved)

    # Differential guarantee: all three paths return the identical bag.
    for workload, by_mode in bags.items():
        reference = by_mode["interpreted"]
        for mode, bag in by_mode.items():
            assert bag == reference, f"{mode} diverged on {workload}"

    speedups = {
        workload: {
            mode: (
                report_modes["interpreted"]["workloads"][workload]["mean_seconds"]
                / report_modes[mode]["workloads"][workload]["mean_seconds"]
            )
            for mode in MODES
        }
        for workload in WORKLOADS
    }

    report = {
        "benchmark": "e13_columnar_kernels",
        "iterations": ITERATIONS,
        "smoke": SMOKE,
        "rows": {"purchases": PURCHASES, "visits": VISITS},
        "modes": report_modes,
        "speedups_over_interpreted": speedups,
    }
    RESULT_FILE.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print("\n[E13] native columnar batch pipeline (interpreted vs compiled vs fused)")
        for workload in WORKLOADS:
            interpreted = report_modes["interpreted"]["workloads"][workload]["mean_seconds"]
            compiled = report_modes["compiled"]["workloads"][workload]["mean_seconds"]
            fused = report_modes["fused"]["workloads"][workload]["mean_seconds"]
            print(
                f"  {workload:24s} {interpreted * 1e3:8.2f} ms → {compiled * 1e3:8.2f} ms"
                f" → {fused * 1e3:8.2f} ms   ({speedups[workload]['fused']:.2f}x fused)"
            )
        print(f"  trajectory written to  {RESULT_FILE.name}")

    if not SMOKE:
        # Acceptance: ≥ 2x on the scan-heavy filter/project workload for the
        # compiled+fused native-batch path over the dict-boundary baseline.
        scan_speedup = speedups["scan_filter_project"]["fused"]
        assert scan_speedup >= 2.0, f"fused scan speedup {scan_speedup:.2f}x below 2x"
        # The kernels must never be slower than interpreted on the other
        # workloads (generous floor — they are dominated by join/group work).
        assert speedups["join_purchases_visits"]["fused"] >= 1.0
        assert speedups["aggregate_by_category"]["fused"] >= 1.0
