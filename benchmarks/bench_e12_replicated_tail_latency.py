"""E12 — replicated stores: hedged requests cut the tail latency of a slow replica.

The marketplace's purchases collection is 3-way replicated; every replica
answers with an 8 ms simulated service latency, and the *preferred* replica
additionally suffers seeded 60 ms latency spikes on ~30 % of its requests (a
"read-local" deployment whose local copy has gone spiky).  The same seeded
spike schedule is replayed twice — once with hedging disabled, once with a
4 ms hedge delay — and the per-query latency distribution is written to
``BENCH_e12.json``:

* **p50** is unaffected: most requests are served by the preferred replica
  at its base latency either way;
* **p99** collapses from spike-dominated (~68 ms) to roughly the hedge delay
  plus a fast replica's base latency: a spiked primary loses the race to the
  hedged backup, whose win is recorded on the replica health board.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro import Estocada
from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, ViewDefinition
from repro.datamodel import TableSchema
from repro.stores import RelationalStore, ReplicationPolicy
from repro.testing import FaultInjector, FaultProfile
from repro.workloads import MarketplaceConfig, generate_marketplace

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_e12.json"
ITERATIONS = 60
REPLICAS = 3
BASE_LATENCY_SECONDS = 0.008
SPIKE_SECONDS = 0.06
SPIKE_RATE = 0.3
HEDGE_DELAY_SECONDS = 0.004
SEED = 1729


def _view(name, head, body, columns):
    return ViewDefinition(name, ConjunctiveQuery(name, head, body), column_names=columns)


def _build(policy: ReplicationPolicy) -> Estocada:
    """Purchases 3-way replicated; replica 0 spiky, all on the same seed."""
    data = generate_marketplace(
        MarketplaceConfig(users=150, products=200, orders=700, carts=80, log_lines=1500, seed=11)
    )
    est = Estocada()

    def factory(name: str):
        index = int(name.rsplit(".", 1)[1])
        inner = RelationalStore(name, latency=BASE_LATENCY_SECONDS)
        if index == 0:
            return FaultInjector(
                inner,
                FaultProfile(seed=SEED, slow_rate=SPIKE_RATE, slow_seconds=SPIKE_SECONDS),
            )
        return FaultInjector(inner, FaultProfile(seed=SEED + index))

    est.register_replicated_store("reppg", REPLICAS, factory, policy=policy)
    est.register_relational_dataset(
        "shop",
        [TableSchema("purchases", ("uid", "sku", "category", "quantity", "price"))],
    )
    est.register_fragment(
        StorageDescriptor(
            "F_purchases", "shop", "reppg",
            _view("F_purchases", ["?u", "?s", "?c", "?q", "?pr"],
                  [Atom("purchases", ["?u", "?s", "?c", "?q", "?pr"])],
                  ("uid", "sku", "category", "quantity", "price")),
            StorageLayout("purchases"), AccessMethod("scan"),
        ),
        rows=data.purchases(),
        indexes=("uid",),
    )
    return est


def _percentile(samples, quantile):
    ordered = sorted(samples)
    position = min(len(ordered) - 1, max(0, round(quantile * (len(ordered) - 1))))
    return ordered[position]


def _measure(est, sql):
    est.query(sql, dataset="shop")  # warm the plan cache; runs measure execution
    trajectory = []
    hedges = failovers = 0
    for _ in range(ITERATIONS):
        started = time.perf_counter()
        result = est.query(sql, dataset="shop")
        trajectory.append(time.perf_counter() - started)
        activity = result.replica_activity()
        hedges += activity["hedges"]
        failovers += activity["failovers"]
    return {
        "p50_seconds": _percentile(trajectory, 0.50),
        "p99_seconds": _percentile(trajectory, 0.99),
        "mean_seconds": statistics.mean(trajectory),
        "max_seconds": max(trajectory),
        "hedges": hedges,
        "failovers": failovers,
        "trajectory_seconds": trajectory,
    }


def test_e12_report(capsys):
    sql = "SELECT uid, sku, price FROM purchases WHERE uid = 42"
    # The same pinned preference (the spiky replica first) and the same fault
    # seeds in both configurations: only the hedging knob differs.
    unhedged = _measure(
        _build(ReplicationPolicy(hedge=False, prefer_order=(0, 1, 2))), sql
    )
    hedged_est = _build(
        ReplicationPolicy(
            hedge=True, hedge_delay_seconds=HEDGE_DELAY_SECONDS, prefer_order=(0, 1, 2)
        )
    )
    hedged = _measure(hedged_est, sql)

    report = {
        "benchmark": "e12_replicated_tail_latency",
        "replicas": REPLICAS,
        "iterations": ITERATIONS,
        "base_latency_seconds": BASE_LATENCY_SECONDS,
        "spike": {"rate": SPIKE_RATE, "seconds": SPIKE_SECONDS, "seed": SEED},
        "hedge_delay_seconds": HEDGE_DELAY_SECONDS,
        "unhedged": unhedged,
        "hedged": hedged,
        "p99_improvement": unhedged["p99_seconds"] / hedged["p99_seconds"],
        "replication": dict(hedged_est.replication_configuration()["reppg"]),
    }
    RESULT_FILE.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print(f"\n[E12] replicated tail latency ({REPLICAS} replicas, "
              f"{BASE_LATENCY_SECONDS * 1e3:.0f} ms base, "
              f"{SPIKE_RATE:.0%} x {SPIKE_SECONDS * 1e3:.0f} ms spikes on the preferred replica)")
        for label, run in (("hedging off", unhedged), ("hedging on ", hedged)):
            print(f"  {label}:  p50 {run['p50_seconds'] * 1e3:6.2f} ms   "
                  f"p99 {run['p99_seconds'] * 1e3:6.2f} ms   "
                  f"(hedges: {run['hedges']}, failovers: {run['failovers']})")
        print(f"  p99 improvement: {report['p99_improvement']:.1f}x")
        print(f"  report written to {RESULT_FILE.name}")

    # Structural claims hold everywhere; the wall-clock tail comparison is
    # skipped in smoke mode (REPRO_BENCH_SMOKE=1, set by CI) where scheduler
    # noise on shared runners can distort percentiles.
    assert unhedged["hedges"] == 0
    assert hedged["hedges"] > 0
    if os.environ.get("REPRO_BENCH_SMOKE", "") != "1":
        assert hedged["p99_seconds"] < unhedged["p99_seconds"], (
            f"hedged p99 {hedged['p99_seconds']:.4f}s not below "
            f"unhedged {unhedged['p99_seconds']:.4f}s"
        )


def test_e12_hedged_results_match_unhedged():
    """Hedging must never change an answer, only its latency."""
    sql = "SELECT uid, sku, price FROM purchases"
    plain = _build(ReplicationPolicy(hedge=False, prefer_order=(0, 1, 2)))
    hedged = _build(
        ReplicationPolicy(
            hedge=True, hedge_delay_seconds=HEDGE_DELAY_SECONDS, prefer_order=(0, 1, 2)
        )
    )
    expected = sorted(map(repr, plain.query(sql, dataset="shop").rows))
    for _ in range(3):
        assert sorted(map(repr, hedged.query(sql, dataset="shop").rows)) == expected
