"""E4 — Section III claim: PACB is 1–2 orders of magnitude faster than classical C&B.

The classical backchase enumerates (and re-chases) sub-queries of the
universal plan; the provenance-aware variant performs one annotated chase and
reads the rewritings off the provenance.  We grow a chain query
``R1 ⋈ R2 ⋈ ... ⋈ Rn`` with one view per relation plus one view per adjacent
pair (so the number of view atoms in the universal plan grows with n) and
measure both algorithms.  The paper's shape: the gap widens rapidly with the
size of the view set, reaching ≥10× within laptop-scale inputs.
"""

from __future__ import annotations

import time

import pytest

from repro.core import Atom, ConjunctiveQuery, ViewDefinition, classical_backchase, pacb_rewrite


def chain_query(length: int) -> ConjunctiveQuery:
    body = [Atom(f"R{i}", [f"?x{i}", f"?x{i + 1}"]) for i in range(length)]
    return ConjunctiveQuery("Q", ["?x0", f"?x{length}"], body)


def chain_views(length: int) -> list[ViewDefinition]:
    views: list[ViewDefinition] = []
    for i in range(length):
        views.append(
            ViewDefinition(
                f"V{i}",
                ConjunctiveQuery(f"V{i}", [f"?a{i}", f"?b{i}"], [Atom(f"R{i}", [f"?a{i}", f"?b{i}"])]),
            )
        )
    for i in range(length - 1):
        views.append(
            ViewDefinition(
                f"W{i}",
                ConjunctiveQuery(
                    f"W{i}",
                    [f"?a{i}", f"?c{i}"],
                    [Atom(f"R{i}", [f"?a{i}", f"?b{i}"]), Atom(f"R{i + 1}", [f"?b{i}", f"?c{i}"])],
                ),
            )
        )
    return views


SIZES = [3, 4, 5, 6, 7]
BENCH_SIZES = [3, 4, 5]


@pytest.mark.parametrize("length", BENCH_SIZES)
def test_e4_pacb_rewriting_time(benchmark, length):
    query, views = chain_query(length), chain_views(length)
    result = benchmark(lambda: pacb_rewrite(query, views))
    assert result.rewritings


@pytest.mark.parametrize("length", BENCH_SIZES)
def test_e4_classical_backchase_rewriting_time(benchmark, length):
    query, views = chain_query(length), chain_views(length)
    rewritings, _ = benchmark(lambda: classical_backchase(query, views))
    assert rewritings


def test_e4_report(capsys):
    """Print the speed-up table (paper: 1–2 orders of magnitude)."""
    lines = []
    for length in SIZES:
        query, views = chain_query(length), chain_views(length)
        started = time.perf_counter()
        pacb_result = pacb_rewrite(query, views)
        pacb_seconds = time.perf_counter() - started
        started = time.perf_counter()
        classical_rewritings, statistics = classical_backchase(query, views)
        classical_seconds = time.perf_counter() - started
        speedup = classical_seconds / pacb_seconds if pacb_seconds > 0 else float("inf")
        lines.append(
            (length, len(views), len(pacb_result.rewritings), len(classical_rewritings),
             pacb_seconds, classical_seconds, speedup, statistics.candidates_considered)
        )
    with capsys.disabled():
        print("\n[E4] PACB vs classical Chase & Backchase (paper: 1-2 orders of magnitude)")
        print("  chain  views  rewritings(pacb/classical)  pacb[s]   classical[s]  speedup  candidates")
        for length, views, pacb_n, classical_n, pacb_s, classical_s, speedup, candidates in lines:
            print(
                f"  {length:5d}  {views:5d}  {pacb_n:3d} / {classical_n:3d}"
                f"                    {pacb_s:8.4f}  {classical_s:11.4f}  {speedup:6.1f}x  {candidates:6d}"
            )
    # Same rewritings found; the gap reaches an order of magnitude at the
    # largest instance, as the paper claims.
    assert lines[-1][2] == lines[-1][3]
    assert lines[-1][6] >= 8.0
