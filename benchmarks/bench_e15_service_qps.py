"""E15 — multi-tenant service: admission control prevents queueing collapse.

An open-loop driver (:class:`repro.testing.OpenLoopDriver`) offers a point
-lookup workload to a :class:`repro.service.QueryService` over a marketplace
fragment served by a store with a fixed simulated latency, sweeping offered
load from well below to several times the service's capacity
(``workers / service_time``).  Two configurations run the identical schedule:

* **no admission** — an effectively unbounded queue, no rate limit, no
  deadline.  Below the knee it behaves fine; past it the backlog grows for
  the whole submission window, so client-observed p99 explodes (each query
  waits behind everything offered before it) and SLO attainment collapses
  toward zero even though the engine itself is healthy;
* **admission** — a bounded per-tenant queue plus a per-query deadline.
  Excess offered load is fast-rejected (``OverloadedError``) before any
  planning work, so the queue — and therefore p99 of the queries actually
  served — stays bounded while goodput holds at capacity.

A third scenario degrades the store with seeded latency spikes
(:class:`repro.testing.FaultInjector`) under moderate load: deadlines turn
stragglers into typed timeouts, the bounded queue sheds the backlog they
cause, and the healthy remainder still completes within SLO.

Results land in ``BENCH_e15.json``.  ``REPRO_BENCH_SMOKE=1`` (CI) shortens
the sweep and skips wall-clock assertions.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import Estocada
from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, ViewDefinition
from repro.datamodel import TableSchema
from repro.service import QueryService, TenantPolicy
from repro.stores import RelationalStore
from repro.testing import FaultInjector, FaultProfile, OpenLoopDriver, WorkloadQuery
from repro.workloads import MarketplaceConfig, generate_marketplace

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_e15.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

SERVICE_TIME_SECONDS = 0.01  # simulated store latency per query
WORKERS = 4
CAPACITY_QPS = WORKERS / SERVICE_TIME_SECONDS  # ~400 qps before queueing
LOAD_FACTORS = (0.5, 1.5, 3.0) if SMOKE else (0.5, 1.0, 2.0, 4.0)
DURATION_SECONDS = 0.6 if SMOKE else 2.5
DRAIN_SECONDS = 0.5 if SMOKE else 2.0
SLO_SECONDS = 0.1
DEADLINE_SECONDS = 0.1
QUEUE_DEPTH = 24
SPIKE_RATE = 0.25
SPIKE_SECONDS = 0.08
SEED = 97


def _view(name, head, body, columns):
    return ViewDefinition(name, ConjunctiveQuery(name, head, body), column_names=columns)


def _build(degraded: bool = False) -> Estocada:
    """Purchases on one relational store with a fixed service time."""
    data = generate_marketplace(
        MarketplaceConfig(users=120, products=150, orders=600, carts=60, log_lines=1200, seed=7)
    )
    est = Estocada()
    store = RelationalStore("pg", latency=SERVICE_TIME_SECONDS)
    if degraded:
        store = FaultInjector(
            store, FaultProfile(seed=SEED, slow_rate=SPIKE_RATE, slow_seconds=SPIKE_SECONDS)
        )
    est.register_store("pg", store)
    est.register_relational_dataset(
        "shop",
        [TableSchema("purchases", ("uid", "sku", "category", "quantity", "price"))],
    )
    est.register_fragment(
        StorageDescriptor(
            "F_purchases", "shop", "pg",
            _view("F_purchases", ["?u", "?s", "?c", "?q", "?pr"],
                  [Atom("purchases", ["?u", "?s", "?c", "?q", "?pr"])],
                  ("uid", "sku", "category", "quantity", "price")),
            StorageLayout("purchases"), AccessMethod("scan"),
        ),
        rows=data.purchases(),
        indexes=("uid",),
    )
    return est


def _workload(tenant: str, deadline_seconds: float | None) -> list[WorkloadQuery]:
    return [
        WorkloadQuery(
            query=f"SELECT uid, sku, price FROM purchases WHERE uid = {uid}",
            dataset="shop",
            tenant=tenant,
            deadline_seconds=deadline_seconds,
            parallelism=1,
        )
        for uid in (7, 23, 42, 77)
    ]


def _sweep(est: Estocada, policy: TenantPolicy, deadline_seconds: float | None):
    """One offered-load sweep; a fresh service per point, shared warm facade."""
    points = []
    for factor in LOAD_FACTORS:
        offered = CAPACITY_QPS * factor
        tenant = f"app-{factor:g}x"
        service = QueryService(est, workers=WORKERS, default_policy=None)
        service.register_tenant(tenant, policy)
        mix = _workload(tenant, deadline_seconds)
        # Warm the tenant's plan-cache namespace so the sweep measures
        # serving, not first-query planning.
        service.execute(mix[0].query, dataset=mix[0].dataset, tenant=tenant, parallelism=1)

        def submit(item, _service=service):
            return _service.submit(
                item.query,
                dataset=item.dataset,
                tenant=item.tenant,
                deadline_seconds=item.deadline_seconds,
                parallelism=item.parallelism,
            )

        driver = OpenLoopDriver(submit, mix, seed=SEED)
        report = driver.run(
            offered,
            DURATION_SECONDS,
            slo_seconds=SLO_SECONDS,
            drain_seconds=DRAIN_SECONDS,
        )
        service.close()
        points.append({"load_factor": factor, **report.describe()})
    return points


def test_e15_report(capsys):
    est = _build()
    no_admission = _sweep(
        est,
        TenantPolicy(max_concurrent=WORKERS, queue_depth=1_000_000),
        deadline_seconds=None,
    )
    admission = _sweep(
        est,
        TenantPolicy(max_concurrent=WORKERS, queue_depth=QUEUE_DEPTH),
        deadline_seconds=DEADLINE_SECONDS,
    )

    # Degraded store: seeded latency spikes; deadlines + bounded queue turn
    # stragglers into typed timeouts and shed the backlog they cause.
    degraded_est = _build(degraded=True)
    degraded_service = QueryService(degraded_est, workers=WORKERS, default_policy=None)
    degraded_service.register_tenant(
        "app-degraded", TenantPolicy(max_concurrent=WORKERS, queue_depth=QUEUE_DEPTH)
    )
    mix = _workload("app-degraded", DEADLINE_SECONDS)
    degraded_service.execute(
        mix[0].query, dataset=mix[0].dataset, tenant="app-degraded", parallelism=1
    )
    degraded_driver = OpenLoopDriver(
        lambda item: degraded_service.submit(
            item.query,
            dataset=item.dataset,
            tenant=item.tenant,
            deadline_seconds=item.deadline_seconds,
            parallelism=item.parallelism,
        ),
        mix,
        seed=SEED,
    )
    degraded = degraded_driver.run(
        CAPACITY_QPS * 0.7,
        DURATION_SECONDS,
        slo_seconds=SLO_SECONDS,
        drain_seconds=DRAIN_SECONDS,
    ).describe()
    degraded_summary = degraded_service.summary()
    degraded_service.close()

    report = {
        "benchmark": "e15_service_qps",
        "smoke": SMOKE,
        "workers": WORKERS,
        "service_time_seconds": SERVICE_TIME_SECONDS,
        "capacity_qps": CAPACITY_QPS,
        "slo_seconds": SLO_SECONDS,
        "deadline_seconds": DEADLINE_SECONDS,
        "queue_depth": QUEUE_DEPTH,
        "no_admission": no_admission,
        "admission": admission,
        "degraded": {
            "spike": {"rate": SPIKE_RATE, "seconds": SPIKE_SECONDS, "seed": SEED},
            "offered_factor": 0.7,
            **degraded,
            "tenant_usage": degraded_summary["tenants"].get("app-degraded", {}),
        },
    }
    RESULT_FILE.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print(f"\n[E15] service QPS / tail latency ({WORKERS} workers, "
              f"{SERVICE_TIME_SECONDS * 1e3:.0f} ms service time, "
              f"capacity ~{CAPACITY_QPS:.0f} qps)")
        for label, sweep in (("no admission", no_admission), ("admission   ", admission)):
            for point in sweep:
                print(f"  {label} @ {point['load_factor']:>3}x:  "
                      f"goodput {point['sustained_qps']:6.1f} qps   "
                      f"p50 {point['p50_seconds'] * 1e3:7.1f} ms   "
                      f"p99 {point['p99_seconds'] * 1e3:7.1f} ms   "
                      f"shed {point['shed_rate']:5.1%}   "
                      f"SLO {point['slo_attainment']:5.1%}")
        print(f"  degraded @ 0.7x:  goodput {degraded['sustained_qps']:.1f} qps   "
              f"timed out {degraded['timed_out']}   shed {degraded['shed']}   "
              f"SLO {degraded['slo_attainment']:.1%}")
        print(f"  report written to {RESULT_FILE.name}")

    overload_no_admission = no_admission[-1]
    overload_admission = admission[-1]
    # Structural claims hold everywhere: without bounds nothing is ever shed
    # and the overload backlog outlives the drain window; with bounds the
    # excess is shed and the queue never outgrows its cap.
    assert all(point["shed"] == 0 for point in no_admission)
    assert overload_no_admission["unfinished"] > 0
    assert overload_admission["shed"] > 0
    assert overload_admission["completed"] > 0
    assert degraded["timed_out"] > 0
    assert degraded["completed"] > 0
    if not SMOKE:
        # Past saturation the unbounded queue's p99 dwarfs the bounded one's,
        # and only the admission-controlled service still meets its SLO for a
        # meaningful fraction of offered load.
        assert overload_admission["p99_seconds"] < overload_no_admission["p99_seconds"] / 2, (
            f"admission p99 {overload_admission['p99_seconds']:.3f}s not well below "
            f"no-admission {overload_no_admission['p99_seconds']:.3f}s"
        )
        assert overload_admission["slo_attainment"] > overload_no_admission["slo_attainment"]
        assert overload_admission["p99_seconds"] <= SLO_SECONDS * 2


def test_e15_service_results_match_direct_execution():
    """Serving through the admission layer must not change any answer."""
    est = _build()
    sql = "SELECT uid, sku, price FROM purchases WHERE uid = 42"
    expected = sorted(map(repr, est.query(sql, dataset="shop").rows))
    service = QueryService(est, workers=2)
    try:
        for tenant in ("a", "b"):
            got = service.execute(sql, dataset="shop", tenant=tenant)
            assert sorted(map(repr, got.rows)) == expected
    finally:
        service.close()
