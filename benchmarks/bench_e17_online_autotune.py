"""E17 — online self-tuning: unattended live migration under a workload shift.

The closed loop the paper sketches: a marketplace serves a users-heavy
workload with ``visits`` parked on a cheap-but-slow archival store.  The
workload then shifts — visits queries dominate — and the background advisor
(:meth:`QueryService.start_autotune`) must notice the hot placement from the
statistics the serving layer already gathers, and migrate ``F_visits`` to the
fast store **live** (dual-write + backfill + atomic cutover) while the
shifted workload keeps running.  Nobody calls the advisor; nobody stops the
world.

Claims checked:

* the migration happens unattended (a ``done`` migration appears in
  ``summary()["migrations"]`` without any explicit migrate call);
* reads are bag-identical before, during and after the cutover;
* post-cutover p99 recovers to within ``2x`` the pre-shift p99 (the shifted
  p99 on the slow store is an order of magnitude worse).

Results land in ``BENCH_e17.json``; ``REPRO_BENCH_SMOKE=1`` (CI) shrinks the
dataset and skips the wall-clock recovery threshold, keeping the structural
claims.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro import Estocada
from repro.advisor import AutotunePolicy
from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, ViewDefinition
from repro.datamodel import TableSchema
from repro.service import QueryService
from repro.stores import RelationalStore

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_e17.json"
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

USERS = 60 if SMOKE else 200
VISITS = 600 if SMOKE else 6_000
PHASE_QUERIES = 60 if SMOKE else 250
SLOW_LATENCY = 0.004 if SMOKE else 0.01
MAX_P99_RATIO = 2.0
MIGRATION_DEADLINE = 60.0

POLICY = AutotunePolicy(min_reads=8, hot_read_share=0.4, hot_latency_seconds=SLOW_LATENCY / 2)


def _view(name, head, body, columns):
    return ViewDefinition(name, ConjunctiveQuery(name, head, body), column_names=columns)


def _user_rows():
    return [
        {"uid": uid, "name": f"user-{uid}", "city": ("paris", "lyon", "nice")[uid % 3]}
        for uid in range(USERS)
    ]


def _visit_rows():
    return [
        {"uid": i % USERS, "sku": f"s{i % 37}", "duration_ms": i % 500}
        for i in range(VISITS)
    ]


def _build() -> Estocada:
    """Users on the fast store; visits parked on the slow archival store.

    Both relations are writable, so the migration runs the managed
    (dual-write + backfill) path, not the offline copy.
    """
    est = Estocada()
    est.register_store("fast", RelationalStore("fast"))
    est.register_store("archive", RelationalStore("archive", latency=SLOW_LATENCY))
    est.register_relational_dataset(
        "app",
        [
            TableSchema("users", ("uid", "name", "city"), primary_key=("uid",)),
            TableSchema("visits", ("uid", "sku", "duration_ms")),
        ],
    )
    est.load_relation("users", _user_rows(), dataset="app")
    est.load_relation("visits", _visit_rows(), dataset="app")
    est.register_fragment(
        StorageDescriptor(
            "F_users", "app", "fast",
            _view("F_users", ["?u", "?n", "?c"], [Atom("users", ["?u", "?n", "?c"])],
                  ("uid", "name", "city")),
            StorageLayout("users"), AccessMethod("scan"),
        ),
        indexes=("uid",),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_visits", "app", "archive",
            _view("F_visits", ["?u", "?s", "?d"], [Atom("visits", ["?u", "?s", "?d"])],
                  ("uid", "sku", "duration_ms")),
            StorageLayout("visits"), AccessMethod("scan"),
        ),
        indexes=("uid",),
    )
    return est


def _p99(latencies: list[float]) -> float:
    ranked = sorted(latencies)
    return ranked[min(len(ranked) - 1, int(len(ranked) * 0.99))]


def _run_phase(service: QueryService, mix: list[str]) -> list[float]:
    """Issue ``PHASE_QUERIES`` queries round-robin over ``mix``; client latencies."""
    latencies = []
    for index in range(PHASE_QUERIES):
        sql = mix[index % len(mix)]
        started = time.perf_counter()
        service.execute(sql, dataset="app")
        latencies.append(time.perf_counter() - started)
    return latencies


USERS_SQL = "SELECT name, city FROM users WHERE uid = 7"
VISITS_SQL = "SELECT uid, sku FROM visits WHERE uid = 11"
VISITS_SCAN_SQL = "SELECT uid, sku, duration_ms FROM visits"

PRE_SHIFT_MIX = [USERS_SQL, USERS_SQL, USERS_SQL, VISITS_SQL]
SHIFTED_MIX = [VISITS_SQL, VISITS_SQL, VISITS_SQL, USERS_SQL]


def _bag(est: Estocada, sql: str):
    return sorted(tuple(sorted(row.items())) for row in est.query(sql, dataset="app").rows)


def test_e17_report(capsys):
    est = _build()
    visits_before = _bag(est, VISITS_SCAN_SQL)

    with QueryService(est, workers=2) as service:
        # Warm the plan cache so phase A measures serving, not first-plan cost.
        for sql in (USERS_SQL, VISITS_SQL):
            service.execute(sql, dataset="app")

        # Phase A: users-heavy steady state; F_visits is warm but rarely read.
        pre_shift = _run_phase(service, PRE_SHIFT_MIX)
        est.statistics.reset_fragment_usage()

        # Phase B: the workload shifts to visits; the background advisor is
        # the only thing allowed to react.
        service.start_autotune(interval_seconds=0.2, policy=POLICY)
        shifted = _run_phase(service, SHIFTED_MIX)
        deadline = time.time() + MIGRATION_DEADLINE
        while est.catalog.fragment("F_visits").store == "archive" and time.time() < deadline:
            shifted.extend(_run_phase(service, SHIFTED_MIX))
        service.stop_autotune()

        migrations = service.summary()["migrations"]
        assert migrations, "the background advisor never attempted a migration"
        assert migrations[-1]["phase"] == "done", migrations[-1]
        assert migrations[-1]["managed"] is True  # dual-write path, not offline copy
        assert est.catalog.fragment("F_visits").store == "fast"

        # Phase C: same shifted mix, now on the migrated placement.
        post_cutover = _run_phase(service, SHIFTED_MIX)

    # Cutover preserved the bag: the moved fragment serves exactly the rows
    # the archival placement served.
    assert _bag(est, VISITS_SCAN_SQL) == visits_before

    p99_pre = _p99(pre_shift)
    p99_shifted = _p99(shifted)
    p99_post = _p99(post_cutover)
    report = {
        "benchmark": "e17_online_autotune",
        "smoke": SMOKE,
        "base_rows": {"users": USERS, "visits": VISITS},
        "slow_store_latency_ms": SLOW_LATENCY * 1e3,
        "phase_queries": PHASE_QUERIES,
        "p99_pre_shift_ms": p99_pre * 1e3,
        "p99_shifted_ms": p99_shifted * 1e3,
        "p99_post_cutover_ms": p99_post * 1e3,
        "recovery_ratio": p99_post / p99_pre if p99_pre else float("inf"),
        "migrations": migrations,
    }
    RESULT_FILE.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print(f"\n[E17] online autotune under a workload shift "
              f"({VISITS} visit rows, archival latency {SLOW_LATENCY * 1e3:.0f} ms)")
        print(f"  p99 pre-shift:    {p99_pre * 1e3:7.2f} ms (users-heavy, visits archived)")
        print(f"  p99 shifted:      {p99_shifted * 1e3:7.2f} ms (visits-heavy, pre-migration)")
        print(f"  p99 post-cutover: {p99_post * 1e3:7.2f} ms (visits-heavy, migrated live)")
        print(f"  backfill rows:    {migrations[-1]['backfill_rows']}")
        print(f"  report written to {RESULT_FILE.name}")

    if not SMOKE:
        assert p99_shifted > p99_post, "the shift never degraded latency; nothing was tuned"
        assert p99_post <= MAX_P99_RATIO * p99_pre, (
            f"post-cutover p99 {p99_post * 1e3:.2f} ms did not recover to within "
            f"{MAX_P99_RATIO}x the pre-shift p99 {p99_pre * 1e3:.2f} ms"
        )


def test_e17_migration_survives_concurrent_writes():
    """Writes racing the unattended migration land exactly once."""
    est = _build()
    expected = len(_bag(est, VISITS_SCAN_SQL))

    def _race(phase: str) -> None:
        if phase == "backfill":
            est.insert("visits", {"uid": 1, "sku": "raced", "duration_ms": 1})

    migration = est.migrate_fragment("F_visits", "fast", phase_hook=_race)
    assert migration.phase == "done"
    rows = _bag(est, VISITS_SCAN_SQL)
    assert len(rows) == expected + 1
    assert sum(1 for row in rows if ("sku", "raced") in row) == 1
