"""E1 — Figure 1: the full architecture interoperates end to end.

Every component of the paper's architecture figure participates in answering
one marketplace query: the Storage Descriptor Manager resolves fragments
spread over five different store kinds, the PACB engine rewrites the query,
the cost model picks a plan, and the runtime stitches delegated sub-queries
together.  The benchmark measures the whole pipeline and the report checks
each component left a trace.
"""

from __future__ import annotations

from repro.core import Atom, ConjunctiveQuery, Constant

from conftest import (
    add_carts_mongo_fragment,
    add_catalog_fragment,
    add_prefs_kv_fragment,
    add_purchases_fragment,
    add_users_fragment,
    add_visits_fragment,
    base_estocada,
)


def _full_deployment(data):
    est = base_estocada()
    add_users_fragment(est, data)
    add_prefs_kv_fragment(est, data)
    add_purchases_fragment(est, data)
    add_visits_fragment(est, data)
    add_carts_mongo_fragment(est, data)
    add_catalog_fragment(est, data)
    return est


def _personalized_query(uid):
    return ConjunctiveQuery(
        "personalized",
        ["?s", "?d"],
        [
            Atom("purchases", [Constant(uid), "?s", "?c", "?q", "?pr"]),
            Atom("visits", [Constant(uid), "?s", "?c2", "?d"]),
        ],
    )


def test_e1_end_to_end_pipeline(benchmark, market_data):
    est = _full_deployment(market_data)

    def pipeline():
        total = 0
        total += len(est.query("SELECT name, city FROM users WHERE uid = 17", dataset="shop").rows)
        total += len(est.query(_personalized_query(17)).rows)
        total += len(
            est.query("SELECT cart_id, sku FROM carts WHERE uid = 17", dataset="shop").rows
        )
        return total

    benchmark(pipeline)


def test_e1_report(market_data, capsys):
    est = _full_deployment(market_data)
    snapshot = est.catalog.describe()
    explanation = est.explain(_personalized_query(23))
    result = est.query(_personalized_query(23))
    with capsys.disabled():
        print("\n[E1] architecture completeness (Figure 1)")
        print(f"  stores registered:    {sorted(snapshot['stores'])}")
        print(f"  fragments registered: {sorted(snapshot['fragments'])}")
        print(f"  rewritings found:     {len(explanation.rewritings)} (algorithm={explanation.algorithm})")
        print(f"  chosen plan:\n{explanation.plan_text()}")
        print(f"  stores touched by execution: {sorted(result.store_breakdown)}")
    assert len(snapshot["stores"]) == 5
    assert len(snapshot["fragments"]) == 6
    assert explanation.chosen is not None
    assert result.store_breakdown
