"""E5 — Demo step 3: vanilla single-store execution vs. ESTOCADA multi-store.

The demo lets attendees compare, for each dataset, a fragment storing it "as
such" in a DMS of its native data model against a multi-store fragmentation.
We run a mixed Big-Data-Benchmark-style + marketplace workload against
(a) everything in the relational store, and (b) the multi-store layout with
key-value, parallel and materialized-join fragments, and compare execution
effort.  Expected shape: the multi-store layout dominates on the mixed
workload (key lookups and the personalized join improve most).
"""

from __future__ import annotations

import pytest

from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, Constant
from repro.workloads import BigDataConfig, generate_bigdata

from conftest import (
    add_materialized_user_product_fragment,
    add_prefs_kv_fragment,
    add_purchases_fragment,
    add_users_fragment,
    add_visits_fragment,
    base_estocada,
    view,
)


def _add_visits_in_pg(est, data):
    """Single-store variant: browsing history lives in the relational store too."""
    est.register_fragment(
        StorageDescriptor(
            "F_visits", "shop", "pg",
            view("F_visits", ["?u", "?s", "?c", "?d"], [Atom("visits", ["?u", "?s", "?c", "?d"])],
                 ("uid", "sku", "category", "duration_ms")),
            StorageLayout("visits"), AccessMethod("scan"),
        ),
        rows=[{"uid": v["uid"], "sku": v["sku"], "category": v["category"], "duration_ms": v["duration_ms"]}
              for v in data.weblog],
    )


def _single_store(data):
    est = base_estocada()
    add_users_fragment(est, data, indexes=())
    add_purchases_fragment(est, data, indexes=())
    _add_visits_in_pg(est, data)
    return est


def _multi_store(data):
    est = base_estocada()
    add_users_fragment(est, data)
    add_prefs_kv_fragment(est, data)
    add_purchases_fragment(est, data)
    add_visits_fragment(est, data)
    add_materialized_user_product_fragment(est, data)
    return est


def _workload(est, data):
    rows = 0
    execution_seconds = 0.0
    queries = []
    for uid in range(0, 40, 4):
        queries.append(
            ConjunctiveQuery("prefs", ["?pc"], [Atom("users", [Constant(uid), "?n", "?c", "?p", "?pc"])])
        )
        queries.append(
            ConjunctiveQuery(
                "personalized", ["?s", "?d"],
                [Atom("purchases", [Constant(uid), "?s", "?c", "?q", "?pr"]),
                 Atom("visits", [Constant(uid), "?s", "?c2", "?d"])],
            )
        )
    for query in queries:
        result = est.query(query)
        rows += len(result.rows)
        execution_seconds += result.elapsed_seconds
    # One analytical SQL query (scan + aggregate) runs in both layouts.
    result = est.query(
        "SELECT category, COUNT(sku) AS n FROM purchases GROUP BY category", dataset="shop"
    )
    rows += len(result.rows)
    execution_seconds += result.elapsed_seconds
    return rows, execution_seconds


def test_e5_single_store_workload(benchmark, market_data):
    est = _single_store(market_data)
    benchmark(lambda: _workload(est, market_data))


def test_e5_multi_store_workload(benchmark, market_data):
    est = _multi_store(market_data)
    benchmark(lambda: _workload(est, market_data))


def test_e5_report(market_data, capsys):
    single = _single_store(market_data)
    multi = _multi_store(market_data)
    rows_single, seconds_single = _workload(single, market_data)
    rows_multi, seconds_multi = _workload(multi, market_data)
    scanned_single = sum(s.total_metrics.rows_scanned for s in single.catalog.stores().values())
    scanned_multi = sum(s.total_metrics.rows_scanned for s in multi.catalog.stores().values())
    with capsys.disabled():
        print("\n[E5] vanilla single-store vs. ESTOCADA multi-store (demo step 3)")
        print(f"  single-store: exec={seconds_single:.4f}s rows_scanned={scanned_single} answers={rows_single}")
        print(f"  multi-store : exec={seconds_multi:.4f}s rows_scanned={scanned_multi} answers={rows_multi}")
        print(f"  speedup: {seconds_single / seconds_multi:.2f}x")
    assert rows_single == rows_multi
    assert scanned_multi < scanned_single
    assert seconds_multi < seconds_single


def test_e5_bigdata_queries_run_on_both_layouts(market_data, capsys):
    """Big Data Benchmark-style queries (scan, aggregate, join) run end to end."""
    from repro.datamodel import TableSchema
    from repro.stores import ParallelStore, RelationalStore
    from repro import Estocada
    from repro.workloads.bigdata import QUERY_1, QUERY_2, QUERY_3

    data = generate_bigdata(BigDataConfig(pages=300, visits=1500, seed=5))
    est = Estocada()
    est.register_store("pg", RelationalStore("pg"))
    est.register_store("spark", ParallelStore("spark"))
    est.register_relational_dataset(
        "bdb",
        [
            TableSchema("rankings", ("pageURL", "pageRank", "avgDuration"), primary_key=("pageURL",)),
            TableSchema("uservisits", ("sourceIP", "destURL", "adRevenue", "countryCode")),
        ],
    )
    est.register_fragment(
        StorageDescriptor(
            "F_rankings", "bdb", "pg",
            view("F_rankings", ["?u", "?r", "?d"], [Atom("rankings", ["?u", "?r", "?d"])],
                 ("pageURL", "pageRank", "avgDuration")),
            StorageLayout("rankings"), AccessMethod("scan"),
        ),
        rows=data.rankings, indexes=("pageURL",),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_uservisits", "bdb", "spark",
            view("F_uservisits", ["?ip", "?u", "?rev", "?cc"],
                 [Atom("uservisits", ["?ip", "?u", "?rev", "?cc"])],
                 ("sourceIP", "destURL", "adRevenue", "countryCode")),
            StorageLayout("uservisits"), AccessMethod("scan"),
        ),
        rows=[{k: v[k] for k in ("sourceIP", "destURL", "adRevenue", "countryCode")} for v in data.uservisits],
        indexes=("destURL",),
    )
    q1 = est.query(QUERY_1, dataset="bdb")
    q2 = est.query(QUERY_2, dataset="bdb")
    q3 = est.query(QUERY_3, dataset="bdb")
    expected_q1 = sum(1 for r in data.rankings if r["pageRank"] > 500)
    with capsys.disabled():
        print("\n[E5b] Big Data Benchmark-style queries over the hybrid layout")
        print(f"  Q1 (scan)      rows={len(q1.rows)} (expected {expected_q1})")
        print(f"  Q2 (aggregate) rows={len(q2.rows)}")
        print(f"  Q3 (join+agg)  rows={len(q3.rows)} stores={sorted(q3.store_breakdown)}")
    assert len(q1.rows) == expected_q1
    assert len(q2.rows) == len({v["sourceIP"] for v in data.uservisits})
    assert set(q3.store_breakdown) == {"pg", "spark"}
