"""E11 — sharded multi-instance stores: shard-key pruning and scatter-gather fan-out.

The marketplace's high-volume collections (purchases, visits) are spread
across 8 simulated relational instances each, every instance answering with a
per-request service latency.  Three claims are measured and written to
``BENCH_e11.json``:

1. **Shard-key pruning**: a point query whose constant binds the shard key
   contacts exactly 1 of the 8 shards — one request's latency instead of
   eight — and the summary reports ``1 contacted / 7 pruned``.
2. **Scatter-gather fan-out**: an unpruned scan must contact every shard; at
   ``parallelism 4`` the per-shard requests overlap through the Exchange
   machinery for a ≥ 2x wall-clock win over the serial fan-out.
3. **Partial-aggregation pushdown**: a grouped aggregate over the sharded
   collection reduces each shard's rows on the shard's worker and merges the
   partial states, moving only one row per group per shard through the
   mediator (vs. every scanned row without pushdown).
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro import Estocada
from repro.catalog import AccessMethod, ShardingSpec, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, ViewDefinition
from repro.datamodel import TableSchema
from repro.stores import RelationalStore
from repro.workloads import MarketplaceConfig, generate_marketplace

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_e11.json"
ITERATIONS = 7
SHARDS = 8
STORE_LATENCY_SECONDS = 0.02
PARALLELISM_LEVELS = (1, 2, 4)


def _view(name, head, body, columns):
    return ViewDefinition(name, ConjunctiveQuery(name, head, body), column_names=columns)


def _build(latency=STORE_LATENCY_SECONDS):
    """users in one pg instance; purchases and visits hash-sharded on uid."""
    data = generate_marketplace(
        MarketplaceConfig(users=200, products=300, orders=900, carts=100, log_lines=2400, seed=11)
    )
    est = Estocada()
    est.register_store("pg", RelationalStore("pg", latency=latency))
    est.register_sharded_store(
        "shardpg", SHARDS, lambda name: RelationalStore(name, latency=latency)
    )
    est.register_sharded_store(
        "shardlog", SHARDS, lambda name: RelationalStore(name, latency=latency)
    )
    est.register_relational_dataset(
        "shop",
        [
            TableSchema("users", ("uid", "name", "city"), primary_key=("uid",)),
            TableSchema("purchases", ("uid", "sku", "category", "quantity", "price")),
            TableSchema("visits", ("uid", "sku", "category", "duration_ms")),
        ],
    )
    est.register_fragment(
        StorageDescriptor(
            "F_users", "shop", "pg",
            _view("F_users", ["?u", "?n", "?c"], [Atom("users", ["?u", "?n", "?c"])],
                  ("uid", "name", "city")),
            StorageLayout("users"), AccessMethod("scan"),
        ),
        rows=[{"uid": u["uid"], "name": u["name"], "city": u["city"]} for u in data.users],
        indexes=("uid",),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_purchases", "shop", "shardpg",
            _view("F_purchases", ["?u", "?s", "?c", "?q", "?pr"],
                  [Atom("purchases", ["?u", "?s", "?c", "?q", "?pr"])],
                  ("uid", "sku", "category", "quantity", "price")),
            StorageLayout("purchases"), AccessMethod("scan"),
            sharding=ShardingSpec("uid", SHARDS),
        ),
        rows=data.purchases(),
        indexes=("uid",),
    )
    est.register_fragment(
        StorageDescriptor(
            "F_visits", "shop", "shardlog",
            _view("F_visits", ["?u", "?s", "?c", "?d"],
                  [Atom("visits", ["?u", "?s", "?c", "?d"])],
                  ("uid", "sku", "category", "duration_ms")),
            StorageLayout("visits"), AccessMethod("scan"),
            sharding=ShardingSpec("uid", SHARDS),
        ),
        rows=[
            {"uid": v["uid"], "sku": v["sku"], "category": v["category"],
             "duration_ms": v["duration_ms"]}
            for v in data.weblog
        ],
        indexes=("uid",),
    )
    return est


def _timed(est, sql, parallelism, iterations=ITERATIONS):
    trajectory = []
    result = None
    for _ in range(iterations):
        started = time.perf_counter()
        result = est.query(sql, dataset="shop", parallelism=parallelism)
        trajectory.append(time.perf_counter() - started)
    return result, trajectory


def test_e11_report(capsys):
    est = _build()
    scan_sql = "SELECT uid, sku, price FROM purchases"
    point_sql = "SELECT sku, price FROM purchases WHERE uid = 42"
    aggregate_sql = (
        "SELECT category, COUNT(sku) AS n, SUM(price) AS total "
        "FROM purchases GROUP BY category"
    )

    # Warm the plan cache so the runs measure execution, not rewriting.
    reference = est.query(scan_sql, dataset="shop", parallelism=1)

    # -- claim 2: unpruned scan fan-out across parallelism levels -----------------
    fanout_runs = {}
    for level in PARALLELISM_LEVELS:
        result, trajectory = _timed(est, scan_sql, level)
        assert sorted(map(repr, result.rows)) == sorted(map(repr, reference.rows))
        assert result.summary()["shards"]["contacted"] == SHARDS
        fanout_runs[level] = {
            "median_seconds": statistics.median(trajectory),
            "mean_seconds": statistics.mean(trajectory),
            "trajectory_seconds": trajectory,
            "max_concurrent_requests": result.max_concurrent_requests,
        }
    speedup = fanout_runs[1]["median_seconds"] / fanout_runs[4]["median_seconds"]

    # -- claim 1: point queries prune to a single shard ---------------------------
    point_result, point_trajectory = _timed(est, point_sql, 4)
    point_shards = point_result.summary()["shards"]
    pruning_ratio = (
        fanout_runs[1]["median_seconds"] / statistics.median(point_trajectory)
    )

    # -- claim 3: partial aggregation pushdown ------------------------------------
    agg_result, agg_trajectory = _timed(est, aggregate_sql, 4)
    assert "MergeAggregate" in agg_result.plan_description
    assert "PartialAggregate" in agg_result.plan_description
    rows_scanned = sum(b.rows_scanned for b in agg_result.store_breakdown.values())
    # Rows crossing the Exchange queues: partial states only — one row per
    # (shard, category) — instead of every scanned purchase row.
    mediator_rows = agg_result.exchange_rows
    scan_exchange_rows = est.query(scan_sql, dataset="shop", parallelism=4).exchange_rows

    report = {
        "benchmark": "e11_sharded_scatter_gather",
        "shards": SHARDS,
        "iterations": ITERATIONS,
        "store_latency_seconds": STORE_LATENCY_SECONDS,
        "shard_configuration": dict(est.shard_configuration()),
        "fanout_scan": {str(level): run for level, run in fanout_runs.items()},
        "speedup_p4_over_p1": speedup,
        "point_query": {
            "median_seconds": statistics.median(point_trajectory),
            "shards_contacted": point_shards["contacted"],
            "shards_pruned": point_shards["pruned"],
            "speedup_over_serial_fanout": pruning_ratio,
        },
        "partial_aggregation": {
            "median_seconds": statistics.median(agg_trajectory),
            "groups": len(agg_result.rows),
            "rows_scanned_in_shards": rows_scanned,
            "exchange_rows_with_pushdown": mediator_rows,
            "exchange_rows_plain_scan": scan_exchange_rows,
        },
        "cache_stats": dict(est.cache_stats()),
        "result_rows": len(reference.rows),
    }
    RESULT_FILE.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print(f"\n[E11] sharded scatter-gather ({SHARDS} shards, "
              f"{STORE_LATENCY_SECONDS * 1e3:.0f} ms/request simulated latency)")
        for level in PARALLELISM_LEVELS:
            run = fanout_runs[level]
            print(f"  scan parallelism {level}:  {run['median_seconds'] * 1e3:8.2f} ms"
                  f"  (max concurrent requests: {run['max_concurrent_requests']})")
        print(f"  scan speedup p4/p1:  {speedup:6.1f}x")
        print(f"  point query:         {statistics.median(point_trajectory) * 1e3:8.2f} ms, "
              f"shards {point_shards['contacted']}/{SHARDS} "
              f"({point_shards['pruned']} pruned)")
        print(f"  aggregate pushdown:  {statistics.median(agg_trajectory) * 1e3:8.2f} ms, "
              f"{report['partial_aggregation']['groups']} groups, "
              f"{mediator_rows} rows over the exchanges "
              f"(vs {scan_exchange_rows} for the plain scan)")
        print(f"  report written to {RESULT_FILE.name}")

    # Acceptance: point queries contact 1 of 8 shards; fan-out wins ≥ 2x at
    # parallelism 4; pushdown moves only partial states through the mediator.
    # The wall-clock threshold is skipped in smoke mode (REPRO_BENCH_SMOKE=1,
    # set by CI): oversubscribed shared runners add scheduling noise that has
    # nothing to do with the code under test — the structural claims (pruning
    # counts, exchange-row reduction, report written) always hold.
    assert point_shards == {"contacted": 1, "pruned": SHARDS - 1}
    assert mediator_rows < scan_exchange_rows / 10
    if os.environ.get("REPRO_BENCH_SMOKE", "") != "1":
        assert speedup >= 2.0, f"sharded fan-out speedup {speedup:.2f}x below 2x"


def test_e11_sharded_results_match_unsharded_reference():
    """The same workload answered with and without sharding must agree."""
    sharded = _build(latency=0.0)
    queries = [
        "SELECT uid, sku, price FROM purchases",
        "SELECT sku, price FROM purchases WHERE uid = 42",
        "SELECT category, COUNT(sku) AS n FROM purchases GROUP BY category",
    ]
    for sql in queries:
        serial = sharded.query(sql, dataset="shop", parallelism=1)
        parallel = sharded.query(sql, dataset="shop", parallelism=4)
        assert sorted(map(repr, parallel.rows)) == sorted(map(repr, serial.rows)), sql
