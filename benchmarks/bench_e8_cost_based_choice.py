"""E8 — Section III: cost-based choice among several valid rewritings.

With redundant fragments (users both in the relational store and as a
key-value collection; purchases⋈visits both as base fragments and as a
materialized nested view), a query admits several rewritings.  The cost model
must pick the cheapest one, and the pick must actually be cheaper to execute.
This is also the ablation for "cost-based choice vs. first-found rewriting".
"""

from __future__ import annotations

from repro.core import Atom, ConjunctiveQuery, Constant
from repro.runtime import ExecutionEngine

from conftest import (
    add_materialized_user_product_fragment,
    add_prefs_kv_fragment,
    add_purchases_fragment,
    add_users_fragment,
    add_visits_fragment,
    base_estocada,
)


def _build(data):
    est = base_estocada()
    add_users_fragment(est, data)
    add_prefs_kv_fragment(est, data)
    add_purchases_fragment(est, data)
    add_visits_fragment(est, data)
    add_materialized_user_product_fragment(est, data)
    return est


def _query(uid):
    return ConjunctiveQuery(
        "personalized", ["?s", "?d"],
        [Atom("purchases", [Constant(uid), "?s", "?c", "?q", "?pr"]),
         Atom("visits", [Constant(uid), "?s", "?c2", "?d"])],
    )


def test_e8_cost_based_ranking_time(benchmark, market_data):
    est = _build(market_data)
    explanation = benchmark(lambda: est.explain(_query(12)))
    assert len(explanation.ranked_plans) >= 2


def test_e8_report(market_data, capsys):
    est = _build(market_data)
    explanation = est.explain(_query(12))
    ranked = explanation.ranked_plans
    engine = ExecutionEngine()

    measured = []
    for candidate in ranked:
        result = engine.execute(candidate.plan.root)
        measured.append((candidate.rewriting, candidate.estimate.total_cost, result))

    with capsys.disabled():
        print("\n[E8] cost-based choice among redundant rewritings")
        for rewriting, estimated, result in measured:
            fragments = sorted({a.relation for a in rewriting.body})
            scanned = sum(b.rows_scanned for b in result.store_breakdown.values())
            print(f"  {str(fragments):45s} est_cost={estimated:10.1f} "
                  f"exec={result.elapsed_seconds:.5f}s rows_scanned={scanned}")
        chosen = sorted({a.relation for a in explanation.chosen.rewriting.body})
        print(f"  chosen: {chosen}")

    # All rewritings return the same answers.
    answers = [frozenset(map(tuple, (sorted(r.items()) for r in result.rows))) for _, _, result in measured]
    assert len(set(answers)) == 1
    # The cost model's first choice touches no more data than the alternatives.
    chosen_scanned = sum(b.rows_scanned for b in measured[0][2].store_breakdown.values())
    for _, _, result in measured[1:]:
        assert chosen_scanned <= sum(b.rows_scanned for b in result.store_breakdown.values())
    # Cost-based choice beats "first-found rewriting" (ablation): the most
    # expensive alternative scans strictly more than the chosen plan.
    worst_scanned = max(
        sum(b.rows_scanned for b in result.store_breakdown.values()) for _, _, result in measured
    )
    assert chosen_scanned < worst_scanned
