"""E7 — Section III: the binding-pattern encoding yields only feasible rewritings.

The key-value fragments can only be accessed with the key bound.  Rewriting a
query that binds the key (a point lookup, or a join feeding the key) must
produce a feasible plan using the key-value fragment; rewriting a query that
scans by a non-key attribute must *not* route through the key-value fragment
(the rewriting exists but is filtered as infeasible).  The benchmark measures
the rewriting + feasibility-filtering pipeline.
"""

from __future__ import annotations

from repro.core import Atom, ConjunctiveQuery, Constant

from conftest import add_prefs_kv_fragment, add_purchases_fragment, add_users_fragment, base_estocada


def _build(data, with_relational_users=True):
    est = base_estocada()
    if with_relational_users:
        add_users_fragment(est, data)
    add_prefs_kv_fragment(est, data)
    add_purchases_fragment(est, data)
    return est


def _key_bound_query(uid):
    return ConjunctiveQuery("prefs", ["?pc"], [Atom("users", [Constant(uid), "?n", "?c", "?p", "?pc"])])


def _key_fed_by_join_query():
    return ConjunctiveQuery(
        "prefs_of_buyers", ["?u", "?pc"],
        [Atom("purchases", ["?u", Constant(5), "?c", "?q", "?pr"]),
         Atom("users", ["?u", "?n", "?city", "?p", "?pc"])],
    )


def _unbound_key_query():
    return ConjunctiveQuery(
        "by_category", ["?u"], [Atom("users", ["?u", "?n", "?c", "?p", Constant("books")])]
    )


def test_e7_rewriting_with_feasibility_filtering(benchmark, market_data):
    est = _build(market_data)
    benchmark(lambda: est.explain(_key_fed_by_join_query()))


def test_e7_report(market_data, capsys):
    est_kv_only = _build(market_data, with_relational_users=False)
    est_full = _build(market_data)

    bound = est_kv_only.explain(_key_bound_query(9))
    joined = est_kv_only.explain(_key_fed_by_join_query())
    unbound = est_kv_only.explain(_unbound_key_query())
    unbound_with_fallback = est_full.explain(_unbound_key_query())

    with capsys.disabled():
        print("\n[E7] access-pattern (binding) restrictions and feasible rewritings")
        print(f"  key bound by constant : rewritings={len(bound.rewritings)} "
              f"feasible={len(bound.feasible_rewritings)}")
        print(f"  key fed by join       : rewritings={len(joined.rewritings)} "
              f"feasible={len(joined.feasible_rewritings)} (BindJoin plan)")
        print(f"  key never bound (KV only)   : rewritings={len(unbound.rewritings)} "
              f"feasible={len(unbound.feasible_rewritings)}")
        print(f"  key never bound (+relational): feasible plan uses "
              f"{sorted({a.relation for a in unbound_with_fallback.chosen.rewriting.body})}")
    # Point lookups and key-feeding joins are feasible through the KV fragment.
    assert bound.feasible_rewritings
    assert joined.feasible_rewritings
    assert "BindJoin" in joined.plan_text()
    # A non-key scan cannot be served by the KV fragment alone...
    assert unbound.rewritings and not unbound.feasible_rewritings
    # ...but the relational fragment provides the feasible alternative.
    assert {a.relation for a in unbound_with_fallback.chosen.rewriting.body} == {"F_users"}
