"""Shared fixtures and deployment builders for the experiment benchmarks (E1–E8).

Each benchmark reproduces one quantitative claim or demo step of the paper
(see DESIGN.md section 5 and EXPERIMENTS.md).  The helpers here build the
"before" and "after" store layouts of the marketplace scenario so individual
benchmarks stay small.
"""

from __future__ import annotations

import pytest

from repro import Estocada
from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, ViewDefinition
from repro.datamodel import TableSchema
from repro.stores import DocumentStore, FullTextStore, KeyValueStore, ParallelStore, RelationalStore
from repro.workloads import MarketplaceConfig, generate_marketplace


def view(name, head, body, columns):
    """Shorthand for a named view definition with column names."""
    return ViewDefinition(name, ConjunctiveQuery(name, head, body), column_names=columns)


SHOP_TABLES = [
    TableSchema("users", ("uid", "name", "city", "payment", "preferred_category"), primary_key=("uid",)),
    TableSchema("purchases", ("uid", "sku", "category", "quantity", "price")),
    TableSchema("visits", ("uid", "sku", "category", "duration_ms")),
    TableSchema("carts", ("cart_id", "uid", "sku", "quantity")),
    TableSchema("products", ("sku", "title", "description", "category", "price"), primary_key=("sku",)),
]


def cart_rows(data):
    rows = []
    for cart in data.carts:
        for item in cart["items"]:
            rows.append({"cart_id": cart["_id"], "uid": cart["uid"], "sku": item["sku"], "quantity": item["quantity"]})
    return rows


def user_rows(data):
    return [
        {"uid": u["uid"], "name": u["name"], "city": u["city"], "payment": u["payment"],
         "preferred_category": u["preferred_category"]}
        for u in data.users
    ]


def visit_rows(data):
    return [
        {"uid": v["uid"], "sku": v["sku"], "category": v["category"], "duration_ms": v["duration_ms"]}
        for v in data.weblog
    ]


def base_estocada(algorithm: str = "pacb") -> Estocada:
    """An ESTOCADA instance with all five store kinds and the shop dataset registered."""
    est = Estocada(algorithm=algorithm)
    est.register_store("pg", RelationalStore("pg"))
    est.register_store("redis", KeyValueStore("redis"))
    est.register_store("mongo", DocumentStore("mongo"))
    est.register_store("solr", FullTextStore("solr"))
    est.register_store("spark", ParallelStore("spark"))
    est.register_relational_dataset("shop", SHOP_TABLES)
    return est


def add_users_fragment(est, data, indexes=("uid",)):
    est.register_fragment(
        StorageDescriptor(
            "F_users", "shop", "pg",
            view("F_users", ["?u", "?n", "?c", "?p", "?pc"],
                 [Atom("users", ["?u", "?n", "?c", "?p", "?pc"])],
                 ("uid", "name", "city", "payment", "preferred_category")),
            StorageLayout("users"), AccessMethod("scan"),
        ),
        rows=user_rows(data), indexes=indexes,
    )


def add_prefs_kv_fragment(est, data):
    est.register_fragment(
        StorageDescriptor(
            "F_prefs", "shop", "redis",
            view("F_prefs", ["?u", "?pc"], [Atom("users", ["?u", "?n", "?c", "?p", "?pc"])],
                 ("uid", "preferred_category")),
            StorageLayout("prefs"), AccessMethod("lookup", key_columns=("uid",)),
        ),
        rows=[{"uid": u["uid"], "preferred_category": u["preferred_category"]} for u in data.users],
    )


def add_carts_mongo_fragment(est, data, indexes=("cart_id", "uid")):
    est.register_fragment(
        StorageDescriptor(
            "F_carts", "shop", "mongo",
            view("F_carts", ["?cid", "?u", "?s", "?q"], [Atom("carts", ["?cid", "?u", "?s", "?q"])],
                 ("cart_id", "uid", "sku", "quantity")),
            StorageLayout("carts"), AccessMethod("scan"),
        ),
        rows=cart_rows(data), indexes=indexes,
    )


def add_carts_kv_fragment(est, data):
    est.register_fragment(
        StorageDescriptor(
            "F_carts_kv", "shop", "redis",
            view("F_carts_kv", ["?cid", "?u", "?s", "?q"], [Atom("carts", ["?cid", "?u", "?s", "?q"])],
                 ("cart_id", "uid", "sku", "quantity")),
            StorageLayout("carts_kv"), AccessMethod("lookup", key_columns=("cart_id",)),
        ),
        rows=cart_rows(data),
    )


def add_purchases_fragment(est, data, indexes=("uid", "sku")):
    est.register_fragment(
        StorageDescriptor(
            "F_purchases", "shop", "pg",
            view("F_purchases", ["?u", "?s", "?c", "?q", "?pr"],
                 [Atom("purchases", ["?u", "?s", "?c", "?q", "?pr"])],
                 ("uid", "sku", "category", "quantity", "price")),
            StorageLayout("purchases"), AccessMethod("scan"),
        ),
        rows=data.purchases(), indexes=indexes,
    )


def add_visits_fragment(est, data, indexes=("uid",)):
    est.register_fragment(
        StorageDescriptor(
            "F_visits", "shop", "spark",
            view("F_visits", ["?u", "?s", "?c", "?d"], [Atom("visits", ["?u", "?s", "?c", "?d"])],
                 ("uid", "sku", "category", "duration_ms")),
            StorageLayout("visits"), AccessMethod("scan"),
        ),
        rows=visit_rows(data), indexes=indexes,
    )


def add_catalog_fragment(est, data):
    est.register_fragment(
        StorageDescriptor(
            "F_catalog", "shop", "solr",
            view("F_catalog", ["?s", "?t", "?d", "?c", "?p"],
                 [Atom("products", ["?s", "?t", "?d", "?c", "?p"])],
                 ("sku", "title", "description", "category", "price")),
            StorageLayout("catalog"), AccessMethod("scan"),
        ),
        rows=data.products, indexes=("title", "description"),
    )


def add_materialized_user_product_fragment(est, data):
    """The paper's purchases ⋈ browsing-history view, materialized in Spark."""
    definition = ConjunctiveQuery(
        "F_user_product",
        ["?u", "?s", "?c", "?d"],
        [Atom("purchases", ["?u", "?s", "?c", "?q", "?pr"]), Atom("visits", ["?u", "?s", "?c2", "?d"])],
    )
    by_user_sku = {}
    for p in data.purchases():
        by_user_sku.setdefault((p["uid"], p["sku"]), p)
    rows = []
    for v in data.weblog:
        p = by_user_sku.get((v["uid"], v["sku"]))
        if p is not None:
            rows.append({"uid": v["uid"], "sku": v["sku"], "category": p["category"], "duration_ms": v["duration_ms"]})
    est.register_fragment(
        StorageDescriptor(
            "F_user_product", "shop", "spark",
            ViewDefinition("F_user_product", definition, column_names=("uid", "sku", "category", "duration_ms")),
            StorageLayout("user_product"), AccessMethod("scan"),
        ),
        rows=rows, indexes=("uid",),
    )
    return len(rows)


@pytest.fixture(scope="session")
def market_data():
    """Marketplace data shared by all benchmarks (larger than the unit-test fixture)."""
    return generate_marketplace(
        MarketplaceConfig(users=300, products=400, orders=1200, carts=250, log_lines=6000, seed=7)
    )
