"""E10 — the concurrent scatter-gather runtime and the statistics feedback loop.

Two claims of the parallel-runtime refactor are measured and written to
``BENCH_e10.json``:

1. **Scatter-gather overlap**: a query fanning out to three stores — each
   with a simulated per-request service latency, as the real Postgres /
   MongoDB / Spark backends would have — pays roughly the *max* of the store
   latencies when executed with ``parallelism >= 3``, instead of their sum on
   the serial engine.  Target: ≥ 2x wall-clock speedup at parallelism 4.
2. **Adaptive statistics**: after the data grows behind the catalog's back,
   the cost model's cardinality estimates are stale; the execution feedback
   (observed row counts → exponentially-weighted refresh) drives the relative
   estimation error back down without a manual statistics refresh.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro import Estocada
from repro.catalog import AccessMethod, StorageDescriptor, StorageLayout
from repro.core import Atom, ConjunctiveQuery, ViewDefinition
from repro.datamodel import TableSchema
from repro.stores import DocumentStore, ParallelStore, RelationalStore

RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_e10.json"
ITERATIONS = 7
STORE_LATENCY_SECONDS = 0.03
PARALLELISM_LEVELS = (1, 2, 4)


def _view(name, head, body, columns):
    return ViewDefinition(name, ConjunctiveQuery(name, head, body), column_names=columns)


def _build(users=120, purchases=360, visits=240):
    """A 3-store deployment: one fragment per store, all with service latency."""
    est = Estocada()
    stores = {
        "pg": RelationalStore("pg", latency=STORE_LATENCY_SECONDS),
        "mongo": DocumentStore("mongo", latency=STORE_LATENCY_SECONDS),
        "spark": ParallelStore("spark", latency=STORE_LATENCY_SECONDS),
    }
    for name, store in stores.items():
        est.register_store(name, store)
    est.register_relational_dataset(
        "shop",
        [
            TableSchema("users", ("uid", "name")),
            TableSchema("purchases", ("uid", "sku")),
            TableSchema("visits", ("uid", "duration_ms")),
        ],
    )
    est.register_fragment(
        StorageDescriptor(
            "F_users", "shop", "pg",
            _view("F_users", ["?u", "?n"], [Atom("users", ["?u", "?n"])], ("uid", "name")),
            StorageLayout("users"), AccessMethod("scan"),
        ),
        rows=[{"uid": i, "name": f"user{i}"} for i in range(users)],
    )
    est.register_fragment(
        StorageDescriptor(
            "F_purchases", "shop", "mongo",
            _view("F_purchases", ["?u", "?s"], [Atom("purchases", ["?u", "?s"])], ("uid", "sku")),
            StorageLayout("purchases"), AccessMethod("scan"),
        ),
        rows=[{"uid": i % users, "sku": f"sku{i % 97}"} for i in range(purchases)],
    )
    est.register_fragment(
        StorageDescriptor(
            "F_visits", "shop", "spark",
            _view("F_visits", ["?u", "?d"], [Atom("visits", ["?u", "?d"])], ("uid", "duration_ms")),
            StorageLayout("visits"), AccessMethod("scan"),
        ),
        rows=[{"uid": i % users, "duration_ms": 10 * i} for i in range(visits)],
    )
    return est, stores


def _fanout_query():
    """users ⋈ purchases ⋈ visits: one delegated scan per store."""
    return ConjunctiveQuery(
        "fanout",
        ["?u", "?s", "?d"],
        [
            Atom("users", ["?u", "?n"]),
            Atom("purchases", ["?u", "?s"]),
            Atom("visits", ["?u", "?d"]),
        ],
    )


def test_e10_report(capsys):
    est, stores = _build()
    query = _fanout_query()
    reference = est.query(query, parallelism=1)  # warm the plan cache

    runs = {}
    for level in PARALLELISM_LEVELS:
        trajectory = []
        for _ in range(ITERATIONS):
            started = time.perf_counter()
            result = est.query(query, parallelism=level)
            trajectory.append(time.perf_counter() - started)
        assert sorted(map(repr, result.rows)) == sorted(map(repr, reference.rows))
        runs[level] = {
            "mean_seconds": statistics.mean(trajectory),
            "median_seconds": statistics.median(trajectory),
            "trajectory_seconds": trajectory,
            "max_concurrent_requests": result.max_concurrent_requests,
        }
    speedup = runs[1]["median_seconds"] / runs[4]["median_seconds"]

    # -- feedback: estimation accuracy before/after observations ------------------
    est_fb, stores_fb = _build(users=40, purchases=60, visits=50)
    for store in stores_fb.values():
        store.set_simulated_latency(0.0)
    feedback_query = _fanout_query()
    est_fb.query(feedback_query)  # compute base statistics + first observations
    # The purchases collection grows 10x behind the catalog's back.
    true_rows = 600
    stores_fb["mongo"].insert(
        "purchases", [{"uid": i % 40, "sku": f"sku{i % 97}"} for i in range(60, true_rows)]
    )
    error_trajectory = []
    for _ in range(8):
        estimate = est_fb.cost_model.estimated_cardinality("F_purchases")
        error_trajectory.append(abs(estimate - true_rows) / true_rows)
        est_fb.query(feedback_query)
    final_estimate = est_fb.cost_model.estimated_cardinality("F_purchases")

    report = {
        "benchmark": "e10_parallel_scatter_gather",
        "iterations": ITERATIONS,
        "store_latency_seconds": STORE_LATENCY_SECONDS,
        "parallelism": {str(level): run for level, run in runs.items()},
        "speedup_p4_over_p1": speedup,
        "result_rows": len(reference.rows),
        "feedback": {
            "fragment": "F_purchases",
            "true_cardinality": true_rows,
            "relative_error_trajectory": error_trajectory,
            "final_estimate": final_estimate,
            "cache_stats": dict(est_fb.cache_stats()),
        },
    }
    RESULT_FILE.write_text(json.dumps(report, indent=2) + "\n")

    with capsys.disabled():
        print("\n[E10] concurrent scatter-gather (3-store fan-out, "
              f"{STORE_LATENCY_SECONDS * 1e3:.0f} ms/request simulated latency)")
        for level in PARALLELISM_LEVELS:
            run = runs[level]
            print(f"  parallelism {level}:  {run['median_seconds'] * 1e3:8.3f} ms/query"
                  f"  (max concurrent requests: {run['max_concurrent_requests']})")
        print(f"  speedup p4/p1:   {speedup:8.1f}x")
        print(f"  estimate error:  {error_trajectory[0]:.2f} -> {error_trajectory[-1]:.2f} "
              f"(estimate {final_estimate} vs true {true_rows})")
        print(f"  report written to {RESULT_FILE.name}")

    # Acceptance: ≥ 2x wall-clock at parallelism 4 on the 3-store fan-out.
    assert speedup >= 2.0, f"scatter-gather speedup {speedup:.2f}x below 2x"
    # The serial fallback answers are identical, checked above; the feedback
    # loop must at least halve the relative estimation error.
    assert error_trajectory[-1] <= error_trajectory[0] / 2


def test_e10_parallelism_one_matches_serial_engine():
    """parallelism=1 goes down the exact pre-refactor serial code path."""
    est, _ = _build(users=30, purchases=50, visits=40)
    query = _fanout_query()
    serial = est.query(query, parallelism=1)
    assert serial.parallelism == 1
    assert serial.max_concurrent_requests == 1
    parallel = est.query(query, parallelism=4)
    assert sorted(map(repr, parallel.rows)) == sorted(map(repr, serial.rows))
