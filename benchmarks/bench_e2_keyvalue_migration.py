"""E2 — Section II claim: migrating key-lookup fragments to a key-value store.

The marketplace's predominant queries are key-based searches (user preferences
and shopping carts).  The paper reports a ≈20 % workload improvement after
moving those fragments from the relational/document stores to Voldemort-like
key-value storage.  This benchmark runs the same key-lookup workload against
the *before* layout (preferences in Postgres, carts in MongoDB) and the
*after* layout (both also available in the key-value store) and reports the
speed-up; the shape to verify is a double-digit-percent (or better)
improvement.
"""

from __future__ import annotations

import pytest

from repro.core import Atom, ConjunctiveQuery, Constant
from repro.workloads import key_lookup_workload

from conftest import (
    add_carts_kv_fragment,
    add_carts_mongo_fragment,
    add_prefs_kv_fragment,
    add_users_fragment,
    base_estocada,
)


def _prefs_query(uid):
    return ConjunctiveQuery("prefs", ["?pc"], [Atom("users", [Constant(uid), "?n", "?c", "?p", "?pc"])])


def _cart_query(cart_id):
    return ConjunctiveQuery(
        "cart", ["?u", "?s", "?q"], [Atom("carts", [Constant(cart_id), "?u", "?s", "?q"])]
    )


def _run_workload(est, workload):
    """Run the workload; returns (answer rows, execution-engine seconds).

    The execution-engine seconds exclude rewriting/planning time: the paper's
    20 % claim is about executing the (re)fragmented workload, and a real
    deployment rewrites each query *template* once, not once per key.
    """
    rows = 0
    execution_seconds = 0.0
    for kind, key in workload:
        query = _prefs_query(key) if kind == "prefs" else _cart_query(key)
        result = est.query(query)
        rows += len(result.rows)
        execution_seconds += result.elapsed_seconds
    return rows, execution_seconds


def _build_before(data):
    est = base_estocada()
    add_users_fragment(est, data, indexes=())  # vanilla: no covering index either
    add_carts_mongo_fragment(est, data, indexes=())
    return est

def _build_after(data):
    est = base_estocada()
    add_users_fragment(est, data, indexes=())
    add_carts_mongo_fragment(est, data, indexes=())
    add_prefs_kv_fragment(est, data)
    add_carts_kv_fragment(est, data)
    return est


@pytest.fixture(scope="module")
def workload(market_data):
    return key_lookup_workload(market_data, lookups=120)


def test_e2_before_key_lookups_on_relational_and_document(benchmark, market_data, workload):
    est = _build_before(market_data)
    benchmark(lambda: _run_workload(est, workload))


def test_e2_after_key_lookups_on_keyvalue_store(benchmark, market_data, workload):
    est = _build_after(market_data)
    benchmark(lambda: _run_workload(est, workload))


def test_e2_report(market_data, workload, capsys):
    """Print the paper-style before/after comparison (rows scanned and execution time)."""
    before = _build_before(market_data)
    after = _build_after(market_data)
    results = {}
    for label, est in (("before (pg+mongo)", before), ("after (+key-value)", after)):
        rows, execution_seconds = _run_workload(est, workload)
        scanned = sum(
            store.total_metrics.rows_scanned for store in est.catalog.stores().values()
        )
        results[label] = (execution_seconds, scanned, rows)
    improvement = 1 - results["after (+key-value)"][0] / results["before (pg+mongo)"][0]
    with capsys.disabled():
        print("\n[E2] key-lookup workload (paper: ~20% improvement after key-value migration)")
        for label, (elapsed, scanned, rows) in results.items():
            print(f"  {label:24s} exec_time={elapsed:.4f}s rows_scanned={scanned:7d} answers={rows}")
        print(f"  measured execution improvement: {improvement:.1%}")
    assert results["after (+key-value)"][1] < results["before (pg+mongo)"][1]
    assert improvement > 0.10
