"""E3 — Section II claim: materializing purchases ⋈ browsing-history (+40 %).

The personalized item-search query joins a user's past purchases (relational
store) with their browsing history (parallel store).  The paper materializes
the join as a nested relation in Spark, indexed by user and category, for an
extra ≈40 % improvement.  We run the personalized-search workload before and
after registering the materialized fragment and compare execution effort.
"""

from __future__ import annotations

import pytest

from repro.core import Atom, ConjunctiveQuery, Constant

from conftest import (
    add_materialized_user_product_fragment,
    add_purchases_fragment,
    add_users_fragment,
    add_visits_fragment,
    base_estocada,
)


def _personalized_query(uid):
    return ConjunctiveQuery(
        "personalized",
        ["?s", "?c", "?d"],
        [
            Atom("purchases", [Constant(uid), "?s", "?c", "?q", "?pr"]),
            Atom("visits", [Constant(uid), "?s", "?c2", "?d"]),
        ],
    )


def _build_before(data):
    est = base_estocada()
    add_users_fragment(est, data)
    add_purchases_fragment(est, data)
    add_visits_fragment(est, data)
    return est


def _build_after(data):
    est = _build_before(data)
    add_materialized_user_product_fragment(est, data)
    return est


def _run(est, user_ids):
    rows = 0
    execution_seconds = 0.0
    for uid in user_ids:
        result = est.query(_personalized_query(uid))
        rows += len(result.rows)
        execution_seconds += result.elapsed_seconds
    return rows, execution_seconds


@pytest.fixture(scope="module")
def user_ids():
    return list(range(0, 60, 2))


def test_e3_before_mediated_join(benchmark, market_data, user_ids):
    est = _build_before(market_data)
    benchmark(lambda: _run(est, user_ids))


def test_e3_after_materialized_nested_join(benchmark, market_data, user_ids):
    est = _build_after(market_data)
    benchmark(lambda: _run(est, user_ids))


def test_e3_report(market_data, user_ids, capsys):
    before = _build_before(market_data)
    after = _build_after(market_data)
    rows_before, seconds_before = _run(before, user_ids)
    rows_after, seconds_after = _run(after, user_ids)
    scanned_before = sum(s.total_metrics.rows_scanned for s in before.catalog.stores().values())
    scanned_after = sum(s.total_metrics.rows_scanned for s in after.catalog.stores().values())
    improvement = 1 - seconds_after / seconds_before if seconds_before else 0.0
    explanation = after.explain(_personalized_query(4))
    chosen = {a.relation for a in explanation.chosen.rewriting.body}
    with capsys.disabled():
        print("\n[E3] personalized search, materialized join fragment (paper: ~40% further gain)")
        print(f"  before: exec={seconds_before:.4f}s rows_scanned={scanned_before} answers={rows_before}")
        print(f"  after : exec={seconds_after:.4f}s rows_scanned={scanned_after} answers={rows_after}")
        print(f"  chosen fragments after materialization: {sorted(chosen)}")
        print(f"  measured execution improvement: {improvement:.1%}")
    assert rows_before == rows_after
    assert chosen == {"F_user_product"}
    assert scanned_after < scanned_before
    assert improvement > 0.20
