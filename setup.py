"""Setuptools shim.

The offline environment used for the reproduction has no ``wheel`` package, so
PEP 660 editable wheels cannot be built; keeping a ``setup.py`` lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
